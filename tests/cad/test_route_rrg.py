"""Routing-graph and router tests."""

import pytest

from repro.cad import NetSpec, Router, RoutingError, RoutingGraph
from repro.device import Architecture, Coord, Rect, Wire, wires_in_region


@pytest.fixture
def arch():
    return Architecture("t", 6, 6, k=4, channel_width=4)


class TestRoutingGraph:
    def test_full_device_node_count(self, arch):
        g = RoutingGraph(arch)
        n_h = (arch.height + 1) * arch.width * arch.channel_width
        n_v = (arch.width + 1) * arch.height * arch.channel_width
        n_long = (arch.height + 1 + arch.width + 1) * arch.long_per_channel
        assert g.n_wires == n_h + n_v + n_long

    def test_pads_appended(self, arch):
        g = RoutingGraph(arch, include_pads=True)
        assert len(g) == g.n_wires + arch.n_pins
        assert not g.is_wire(g.n_wires)

    def test_region_scope_excludes_outside_wires(self, arch):
        region = Rect(1, 1, 3, 3)
        g = RoutingGraph(arch, region=region)
        assert set(g.nodes) == set(wires_in_region(arch, region))

    def test_region_with_pads_rejected(self, arch):
        with pytest.raises(ValueError):
            RoutingGraph(arch, region=Rect(0, 0, 2, 2), include_pads=True)

    def test_adjacency_symmetric(self, arch):
        g = RoutingGraph(arch)
        for a in range(0, len(g), 17):
            for b, _edge in g.adj[a]:
                assert any(x == a for x, _ in g.adj[b])

    def test_disjoint_switchboxes_keep_track(self, arch):
        """Edges only connect same-track wires (track-plane property)."""
        g = RoutingGraph(arch)
        for a in range(g.n_wires):
            wa = g.nodes[a]
            for b, edge in g.adj[a]:
                if edge[0] == "sw":
                    assert g.nodes[b].t == wa.t

    def test_wire_id_lookup(self, arch):
        g = RoutingGraph(arch)
        w = Wire("H", 0, 0, 0)
        assert g.nodes[g.wire_id(w)] == w
        with pytest.raises(KeyError):
            RoutingGraph(arch, region=Rect(0, 0, 2, 2)).wire_id(Wire("H", 5, 5, 0))


class TestRouter:
    def test_wire_to_wire_same_track(self, arch):
        g = RoutingGraph(arch)
        r = Router(g)
        net = NetSpec(
            "n", ("wire", Wire("H", 0, 0, 1)), [("wire", Wire("H", 4, 0, 1))]
        )
        routed = r.route([net])["n"]
        assert g.wire_id(Wire("H", 0, 0, 1)) in routed.nodes
        assert g.wire_id(Wire("H", 4, 0, 1)) in routed.nodes
        assert routed.switches  # must pass through switch boxes

    def test_cross_track_unreachable(self, arch):
        """Disjoint boxes: a fixed wire source cannot reach another track."""
        g = RoutingGraph(arch)
        r = Router(g, max_iterations=2)
        net = NetSpec(
            "n", ("wire", Wire("H", 0, 0, 0)), [("wire", Wire("H", 4, 0, 1))]
        )
        with pytest.raises(RoutingError):
            r.route([net])

    def test_clb_source_to_pin_sink(self, arch):
        g = RoutingGraph(arch)
        r = Router(g)
        net = NetSpec("n", ("clb", Coord(1, 1)), [("clbpin", Coord(4, 4), 2)])
        routed = r.route([net])["n"]
        assert routed.source_taps
        assert ("clbpin", Coord(4, 4), 2) in routed.sink_taps

    def test_multi_sink_tree_shares_wires(self, arch):
        g = RoutingGraph(arch)
        r = Router(g)
        net = NetSpec(
            "n",
            ("clb", Coord(0, 0)),
            [("clbpin", Coord(5, 0), 0), ("clbpin", Coord(5, 1), 0)],
        )
        routed = r.route([net])["n"]
        # A tree, not two disjoint paths: fewer wires than the sum of two
        # independent routes of length ~6.
        assert len(routed.nodes) < 14

    def test_congestion_resolves(self, arch):
        """Many nets across the same cut must spread over tracks."""
        g = RoutingGraph(arch)
        r = Router(g)
        nets = [
            NetSpec(
                f"n{i}", ("clb", Coord(0, i)), [("clbpin", Coord(5, i), 0)]
            )
            for i in range(4)
        ]
        routed = r.route(nets)
        used = {}
        for rn in routed.values():
            for nid in rn.nodes:
                assert used.setdefault(nid, rn.name) == rn.name, "wire shared"

    def test_occupancy_legal_after_route(self, arch):
        g = RoutingGraph(arch)
        r = Router(g)
        nets = [
            NetSpec(f"n{i}", ("clb", Coord(i, 0)), [("clbpin", Coord(i, 5), 0)])
            for i in range(5)
        ]
        r.route(nets)
        assert all(o <= 1 for o in r.occupancy)

    def test_duplicate_net_names_rejected(self, arch):
        g = RoutingGraph(arch)
        r = Router(g)
        net = NetSpec("n", ("clb", Coord(0, 0)), [("clbpin", Coord(1, 1), 0)])
        with pytest.raises(ValueError):
            r.route([net, net])

    def test_pad_source_and_sink(self, arch):
        from repro.device import iob_sites

        g = RoutingGraph(arch, include_pads=True)
        r = Router(g)
        sites = iob_sites(arch)
        net = NetSpec("n", ("pad", sites[0]), [("pad", sites[-1])])
        routed = r.route([net])["n"]
        assert sites[0] in routed.pad_taps
        assert sites[-1] in routed.pad_taps

    def test_sink_path_stats_monotone(self, arch):
        """A farther sink accumulates at least as many wires."""
        g = RoutingGraph(arch)
        r = Router(g)
        near = ("clbpin", Coord(1, 0), 0)
        far = ("clbpin", Coord(5, 0), 0)
        net = NetSpec("n", ("clb", Coord(0, 0)), [near, far])
        routed = r.route([net])["n"]
        assert routed.sink_path_stats[far][0] >= routed.sink_path_stats[near][0]

    def test_source_wire_outside_scope_raises(self, arch):
        g = RoutingGraph(arch, region=Rect(0, 0, 2, 2))
        r = Router(g)
        net = NetSpec("n", ("wire", Wire("H", 5, 5, 0)), [("clbpin", Coord(0, 0), 0)])
        with pytest.raises(RoutingError, match="outside scope"):
            r.route([net])
