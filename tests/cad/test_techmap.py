"""Technology-mapping tests: truth-table math and functional preservation."""

import random

import pytest

from repro.cad import TechmapError, absorb_fanin, check_mapped, gate_truth, technology_map
from repro.netlist import (
    Cell,
    CellKind,
    LogicSimulator,
    Netlist,
    NetlistBuilder,
    alu,
    comparator,
    moore_fsm,
    random_logic,
    ripple_adder,
    serial_crc,
)

rng = random.Random(99)


class TestGateTruth:
    def test_and2(self):
        assert gate_truth(CellKind.AND, ["a", "b"], ["a", "b"]) == 0b1000

    def test_or2(self):
        assert gate_truth(CellKind.OR, ["a", "b"], ["a", "b"]) == 0b1110

    def test_xor3(self):
        truth = gate_truth(CellKind.XOR, ["a", "b", "c"], ["a", "b", "c"])
        assert truth == 0b10010110

    def test_duplicate_pins_collapse(self):
        # XOR(a, a) == 0 over support [a]
        assert gate_truth(CellKind.XOR, ["a"], ["a", "a"]) == 0b00
        # AND(a, a) == a
        assert gate_truth(CellKind.AND, ["a"], ["a", "a"]) == 0b10

    def test_mux(self):
        truth = gate_truth(CellKind.MUX, ["s", "a", "b"], ["s", "a", "b"])
        for s in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    idx = s | (a << 1) | (b << 2)
                    assert ((truth >> idx) & 1) == (b if s else a)


class TestAbsorb:
    def test_absorb_not_into_and(self):
        # node = AND(x, y); sub at position 0 is NOT(z) -> AND(NOT z, y)
        node_truth = gate_truth(CellKind.AND, ["x", "y"], ["x", "y"])
        sub_truth = gate_truth(CellKind.NOT, ["z"], ["z"])
        merged, truth = absorb_fanin(["x", "y"], node_truth, 0, ["z"], sub_truth)
        assert merged == ["y", "z"]
        for y in (0, 1):
            for z in (0, 1):
                idx = y | (z << 1)
                assert ((truth >> idx) & 1) == ((1 - z) & y)

    def test_absorb_shared_support(self):
        # node = XOR(x, y), sub at pos 1 = AND(x, z): support stays 3 wide
        node_truth = gate_truth(CellKind.XOR, ["x", "y"], ["x", "y"])
        sub_truth = gate_truth(CellKind.AND, ["x", "z"], ["x", "z"])
        merged, truth = absorb_fanin(["x", "y"], node_truth, 1, ["x", "z"], sub_truth)
        assert merged == ["x", "z"]
        for x in (0, 1):
            for z in (0, 1):
                idx = x | (z << 1)
                assert ((truth >> idx) & 1) == (x ^ (x & z))


def equivalent(a: Netlist, b: Netlist, n_vectors=24, n_cycles=24) -> bool:
    sa, sb = LogicSimulator(a), LogicSimulator(b)
    names = [c.name for c in a.primary_inputs]
    if a.state_bits == 0:
        for _ in range(n_vectors):
            vec = {n: rng.randint(0, 1) for n in names}
            if sa.evaluate(vec) != sb.evaluate(vec):
                return False
        return True
    for _ in range(n_cycles):
        vec = {n: rng.randint(0, 1) for n in names}
        if sa.step(vec) != sb.step(vec):
            return False
    return True


class TestTechnologyMap:
    @pytest.mark.parametrize(
        "nl_factory",
        [
            lambda: ripple_adder(4),
            lambda: comparator(4),
            lambda: alu(3),
            lambda: serial_crc(8, 0x07),
            lambda: moore_fsm(8, 2, seed=4),
            lambda: random_logic(60, 8, 4, seed=5),
        ],
        ids=["adder", "cmp", "alu", "crc", "fsm", "rand"],
    )
    def test_equivalence_after_mapping(self, nl_factory):
        nl = nl_factory()
        mapped = technology_map(nl, k=4)
        check_mapped(mapped, 4)
        assert equivalent(nl, mapped)

    def test_only_mapped_kinds_remain(self):
        mapped = technology_map(ripple_adder(3), k=4)
        kinds = {c.kind for c in mapped.cells.values()}
        assert kinds <= {CellKind.INPUT, CellKind.OUTPUT, CellKind.LUT, CellKind.DFF}

    def test_cone_packing_reduces_luts(self):
        nl = ripple_adder(4)
        mapped4 = technology_map(nl, k=4)
        mapped2 = technology_map(nl, k=2)
        n4 = sum(1 for c in mapped4.cells.values() if c.kind is CellKind.LUT)
        n2 = sum(1 for c in mapped2.cells.values() if c.kind is CellKind.LUT)
        assert n4 < n2

    def test_wide_gate_decomposition(self):
        b = NetlistBuilder("wide")
        ins = b.input_bus("x", 9)
        b.netlist.add(Cell("g", CellKind.AND, tuple(ins)))
        b.output("y", "g")
        nl = b.build()
        mapped = technology_map(nl, k=4)
        check_mapped(mapped, 4)
        assert equivalent(nl, mapped)

    def test_wide_inverted_gate(self):
        b = NetlistBuilder("widenor")
        ins = b.input_bus("x", 7)
        b.netlist.add(Cell("g", CellKind.NOR, tuple(ins)))
        b.output("y", "g")
        nl = b.build()
        mapped = technology_map(nl, k=3)
        assert equivalent(nl, mapped)

    def test_constants_become_luts(self):
        b = NetlistBuilder("const")
        one = b.const(1)
        x = b.input("x")
        b.output("y", b.and_(one, x))
        mapped = technology_map(b.build(), k=4)
        assert equivalent(b.netlist, mapped)

    def test_dead_logic_swept(self):
        b = NetlistBuilder("dead")
        x = b.input("x")
        b.not_(x, name="unused")  # drives nothing
        b.output("y", b.buf(x))
        mapped = technology_map(b.build(), k=4)
        assert "unused" not in mapped

    def test_k_too_small_rejected(self):
        with pytest.raises(TechmapError):
            technology_map(ripple_adder(2), k=1)

    def test_lut_input_passthrough(self):
        """Pre-existing LUT cells survive mapping (FSM generator emits them)."""
        nl = moore_fsm(4, 1, seed=1)
        mapped = technology_map(nl, k=4)
        assert equivalent(nl, mapped)

    def test_deterministic(self):
        m1 = technology_map(random_logic(40, 6, 3, seed=8), k=4)
        m2 = technology_map(random_logic(40, 6, 3, seed=8), k=4)
        assert [(c.name, c.fanin, c.truth) for c in m1.cells.values()] == [
            (c.name, c.fanin, c.truth) for c in m2.cells.values()
        ]
