"""Static-timing-analysis unit tests with hand-built designs."""

import pytest

from repro.cad import analyze_timing, compile_netlist
from repro.cad.pack import Ble, PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutedNet
from repro.device import Coord, Rect, get_family
from repro.netlist import counter, parity_tree, ripple_adder

ARCH = get_family("VF8")


def make_design(bles, outputs, inputs=()):
    d = PackedDesign(name="t", k=4, bles=list(bles), inputs=list(inputs),
                     outputs=dict(outputs))
    d.validate()
    return d


def chain_placement(design):
    coords = {b.name: Coord(i % 8, i // 8) for i, b in enumerate(design.bles)}
    return Placement(design=design, region=Rect(0, 0, 8, 8), coords=coords)


def routed_with(stats_map):
    """RoutedNet per net with given per-sink (wires, switches, long)."""
    out = {}
    for src, sinks in stats_map.items():
        rn = RoutedNet(name=src)
        for sink_key, stats in sinks.items():
            rn.sink_path_stats[sink_key] = stats
        out[src] = rn
    return out


class TestCombinationalPaths:
    def test_single_lut_to_output(self):
        design = make_design(
            [Ble("g", ("x",), 0b10)], {"y": "g"}, inputs=["x"]
        )
        placement = chain_placement(design)
        routed = routed_with({
            "x": {("clbpin", placement.coords["g"], 0): (2, 1, 0)},
        })
        report = analyze_timing(ARCH, placement, routed)
        expect = 2 * ARCH.wire_delay + 1 * ARCH.switch_delay + ARCH.lut_delay
        assert report.critical_path == pytest.approx(expect)
        assert report.critical_kind == "to-output"

    def test_two_lut_chain_adds_delays(self):
        design = make_design(
            [Ble("g1", ("x",), 0b10), Ble("g2", ("g1",), 0b10)],
            {"y": "g2"}, inputs=["x"],
        )
        placement = chain_placement(design)
        routed = routed_with({
            "x": {("clbpin", placement.coords["g1"], 0): (1, 0, 0)},
            "g1": {("clbpin", placement.coords["g2"], 0): (3, 2, 0)},
        })
        report = analyze_timing(ARCH, placement, routed)
        expect = (1 * ARCH.wire_delay + ARCH.lut_delay
                  + 3 * ARCH.wire_delay + 2 * ARCH.switch_delay
                  + ARCH.lut_delay)
        assert report.critical_path == pytest.approx(expect)

    def test_long_wires_use_long_delay(self):
        design = make_design(
            [Ble("g", ("x",), 0b10)], {"y": "g"}, inputs=["x"]
        )
        placement = chain_placement(design)
        routed = routed_with({
            "x": {("clbpin", placement.coords["g"], 0): (1, 2, 1)},
        })
        report = analyze_timing(ARCH, placement, routed)
        expect = (ARCH.wire_delay + 2 * ARCH.switch_delay
                  + ARCH.long_wire_delay + ARCH.lut_delay)
        assert report.critical_path == pytest.approx(expect)


class TestSequentialPaths:
    def test_register_to_register(self):
        # q1 (registered) -> LUT g (fused into registered q2).
        design = make_design(
            [
                Ble("q1", ("q1",), 0b10, registered=True, ff_name="q1"),
                Ble("q2", ("q1",), 0b01, registered=True, ff_name="q2"),
            ],
            {"y": "q2"},
        )
        placement = chain_placement(design)
        routed = routed_with({
            "q1": {
                ("clbpin", placement.coords["q1"], 0): (1, 0, 0),
                ("clbpin", placement.coords["q2"], 0): (2, 1, 0),
            },
        })
        report = analyze_timing(ARCH, placement, routed)
        reg2reg = (ARCH.clock_to_q + 2 * ARCH.wire_delay + ARCH.switch_delay
                   + ARCH.lut_delay + ARCH.setup)
        assert report.critical_path == pytest.approx(reg2reg)
        assert report.critical_kind == "to-register"

    def test_fmax_inverse(self):
        design = make_design([Ble("g", ("x",), 0b10)], {"y": "g"}, ["x"])
        placement = chain_placement(design)
        report = analyze_timing(ARCH, placement, routed_with({"x": {}}))
        assert report.fmax == pytest.approx(1.0 / report.critical_path)


class TestAgainstFullFlow:
    @pytest.mark.parametrize("factory,grows", [
        (lambda w: ripple_adder(w), True),
    ])
    def test_deeper_circuits_have_longer_paths(self, factory, grows):
        cp2 = compile_netlist(factory(2), ARCH, seed=1,
                              effort="greedy").critical_path
        cp5 = compile_netlist(factory(5), ARCH, seed=1,
                              effort="greedy").critical_path
        assert cp5 > cp2

    def test_sequential_circuit_reports_register_paths(self):
        res = compile_netlist(counter(4), ARCH, seed=1, effort="greedy")
        assert res.timing.critical_kind == "to-register"
        assert res.timing.n_timing_paths >= 4

    def test_pure_combinational_reports_output_paths(self):
        res = compile_netlist(parity_tree(6), ARCH, seed=1, effort="greedy")
        assert res.timing.critical_kind == "to-output"
