"""Shared fixtures for VFPGA-manager tests.

Service-behaviour tests run on *synthetic* configurations (real frames and
state bits, no logic) so they are fast and footprints are exact; the
end-to-end tests with compiled circuits live in test_vfpga.py.
"""

import pytest

from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import Kernel, RoundRobin
from repro.sim import Simulator


@pytest.fixture
def arch():
    """12x12 device, partial reconfiguration, known timing."""
    return get_family("VF12")


@pytest.fixture
def registry(arch):
    """Synthetic mix: three combinational widths + one sequential circuit."""
    reg = ConfigRegistry(arch)
    h = arch.height
    reg.register_synthetic("a3", 3, h, critical_path=20e-9)
    reg.register_synthetic("b3", 3, h, critical_path=20e-9)
    reg.register_synthetic("c4", 4, h, critical_path=20e-9)
    reg.register_synthetic("d6", 6, h, critical_path=20e-9)
    reg.register_synthetic("seq4", 4, h, n_state_bits=24, critical_path=20e-9)
    reg.register_synthetic(
        "hidden4", 4, h, n_state_bits=24, critical_path=20e-9,
        state_accessible=False,
    )
    return reg


class Harness:
    """One simulated system around a service."""

    def __init__(self, service, scheduler=None, context_switch=0.0):
        self.sim = Simulator()
        self.service = service
        self.kernel = Kernel(
            self.sim,
            scheduler if scheduler is not None else RoundRobin(time_slice=1e-3),
            service,
            context_switch=context_switch,
        )

    def run(self, tasks):
        self.kernel.spawn_all(tasks)
        return self.kernel.run()


@pytest.fixture
def harness():
    return Harness
