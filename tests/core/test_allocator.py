"""ColumnAllocator tests: fits, splits, merges, fragmentation."""

import pytest

from repro.core import ColumnAllocator, VfpgaError


class TestAllocate:
    def test_first_fit_takes_leftmost(self):
        a = ColumnAllocator(12)
        assert a.allocate(4) == 0
        assert a.allocate(4) == 4
        assert a.total_free == 4

    def test_best_fit_minimizes_leftover(self):
        a = ColumnAllocator(12, coalesce=False)
        a.reserve(0, 3)   # free: (3,9)
        a.release(0, 3)   # free spans: (0,3) and (3,9) — unmerged
        assert a.allocate(3, fit="best") == 0  # exact fit preferred

    def test_worst_fit_takes_largest(self):
        a = ColumnAllocator(12, coalesce=False)
        a.reserve(0, 3)
        a.release(0, 3)
        assert a.allocate(2, fit="worst") == 3

    def test_no_fit_returns_none(self):
        a = ColumnAllocator(4)
        assert a.allocate(5) is None

    def test_bad_fit_name(self):
        with pytest.raises(ValueError):
            ColumnAllocator(4).allocate(1, fit="psychic")

    def test_exhaustion(self):
        a = ColumnAllocator(6)
        a.allocate(6)
        assert a.allocate(1) is None
        assert a.total_free == 0


class TestReleaseAndMerge:
    def test_coalescing_release(self):
        a = ColumnAllocator(10)  # coalesce=True
        x1, x2 = a.allocate(5), a.allocate(5)
        a.release(x1, 5)
        a.release(x2, 5)
        assert a.free_spans == [(0, 10)]

    def test_non_coalescing_keeps_boundaries(self):
        a = ColumnAllocator(10, coalesce=False)
        x1, x2 = a.allocate(5), a.allocate(5)
        a.release(x1, 5)
        a.release(x2, 5)
        assert a.free_spans == [(0, 5), (5, 5)]
        assert a.largest_free == 5
        # The paper's hazard: 10 columns free, an 8-wide request starves.
        assert a.allocate(8) is None

    def test_merge_free_fuses(self):
        a = ColumnAllocator(10, coalesce=False)
        x1, x2 = a.allocate(5), a.allocate(5)
        a.release(x1, 5)
        a.release(x2, 5)
        assert a.merge_free() == 1
        assert a.allocate(8) == 0

    def test_double_free_rejected(self):
        a = ColumnAllocator(10)
        x = a.allocate(4)
        a.release(x, 4)
        with pytest.raises(VfpgaError, match="double free"):
            a.release(x, 4)

    def test_overlapping_free_rejected(self):
        a = ColumnAllocator(10)
        a.allocate(4)
        with pytest.raises(VfpgaError):
            a.release(2, 4)  # overlaps the free tail


class TestReserve:
    def test_reserve_specific_span(self):
        a = ColumnAllocator(10)
        a.reserve(3, 4)
        assert sorted(a.free_spans) == [(0, 3), (7, 3)]

    def test_reserve_unfree_rejected(self):
        a = ColumnAllocator(10)
        a.reserve(3, 4)
        with pytest.raises(VfpgaError):
            a.reserve(4, 2)


class TestFragmentationGauge:
    def test_zero_when_single_hole(self):
        assert ColumnAllocator(10).fragmentation == 0.0

    def test_grows_when_shattered(self):
        a = ColumnAllocator(12, coalesce=False)
        xs = [a.allocate(2) for _ in range(6)]
        for x in xs[::2]:
            a.release(x, 2)
        assert a.total_free == 6
        assert a.largest_free == 2
        assert a.fragmentation == pytest.approx(1 - 2 / 6)

    def test_full_device_zero(self):
        a = ColumnAllocator(4)
        a.allocate(4)
        assert a.fragmentation == 0.0


class TestInvariants:
    def test_conservation_over_random_ops(self):
        import random

        rng = random.Random(42)
        a = ColumnAllocator(32, coalesce=False)
        held = []
        for _ in range(500):
            if held and rng.random() < 0.5:
                x, w = held.pop(rng.randrange(len(held)))
                a.release(x, w)
            else:
                w = rng.randint(1, 6)
                x = a.allocate(w, fit=rng.choice(["first", "best", "worst"]))
                if x is not None:
                    held.append((x, w))
            if rng.random() < 0.1:
                a.merge_free()
            # Invariants: no overlap, conservation of columns.
            total = a.total_free + sum(w for _x, w in held)
            assert total == 32
            covered = sorted(a.free_spans + held)
            for (x1, w1), (x2, _w2) in zip(covered, covered[1:]):
                assert x1 + w1 <= x2, "overlap detected"
