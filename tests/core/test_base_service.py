"""VfpgaServiceBase primitives: port serialization, full-serial wipe,
fabric-idle waits, and charge accounting."""

import pytest

from repro.core import ConfigRegistry, VfpgaError
from repro.core.base import VfpgaServiceBase
from repro.device import Fpga, get_family
from repro.osim import FpgaOp, Task


class ProbeService(VfpgaServiceBase):
    """Minimal concrete service: load-if-needed (side by side), execute."""

    ANCHORS = {"a": (0, 0), "b": (2, 0)}

    def execute(self, task, op):
        entry = self.registry.get(op.config)
        if not self.is_resident(op.config):
            yield from self._charge_load(task, entry, self.ANCHORS[op.config])
        yield from self._charge_io(task, entry, op)
        yield from self._charge_exec(task, entry, self.op_seconds(entry, op))


@pytest.fixture
def partial_registry():
    arch = get_family("VF8")
    reg = ConfigRegistry(arch)
    reg.register_synthetic("a", 2, arch.height, critical_path=20e-9)
    reg.register_synthetic("b", 2, arch.height, critical_path=20e-9)
    return reg


@pytest.fixture
def serial_registry():
    arch = get_family("VF8").scaled(supports_partial=False)
    reg = ConfigRegistry(arch)
    reg.register_synthetic("a", 2, arch.height, critical_path=20e-9)
    reg.register_synthetic("b", 2, arch.height, critical_path=20e-9)
    return reg


class TestPortSerialization:
    def test_concurrent_loads_serialize(self, partial_registry, harness):
        svc = ProbeService(partial_registry)
        h = harness(svc)
        # Two tasks load different configs at t=0; the port is serial so
        # the second load starts only after the first finishes.
        t1 = Task("t1", [FpgaOp("a", 1)])
        t2 = Task("t2", [FpgaOp("b", 1)])
        h.run([t1, t2])
        loads = [e for e in h.kernel.trace.events if e.kind == "fpga-load"]
        assert len(loads) == 2
        assert loads[1].time >= loads[0].time + svc.fpga.port.load_time(
            partial_registry.get("a").bitstream
        ).seconds * 0.99


class TestFullSerialSemantics:
    def test_any_load_evicts_everything(self, serial_registry, harness):
        svc = ProbeService(serial_registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a", 1), FpgaOp("b", 1)])
        h.run([t])
        # After loading b on a full-serial device, a is gone.
        assert svc.resident_handles() == {"b"}

    def test_load_waits_for_fabric_idle(self, serial_registry, harness):
        svc = ProbeService(serial_registry)
        h = harness(svc)
        # Long op on "a"; "b" requested while it runs: on a full-serial
        # device the b download must wait for a's completion.
        ta = Task("ta", [FpgaOp("a", 2_000_000)])  # 40 ms
        tb = Task("tb", [FpgaOp("b", 1)], arrival=1e-3)
        h.run([ta, tb])
        a_done = next(e for e in h.kernel.trace.events
                      if e.kind == "fpga-complete" and e.task == "ta")
        b_load = next(e for e in h.kernel.trace.events
                      if e.kind == "fpga-load" and e.task == "tb")
        assert b_load.time >= a_done.time - 1e-12

    def test_partial_device_does_not_wait(self, partial_registry, harness):
        svc = ProbeService(partial_registry)
        h = harness(svc)
        ta = Task("ta", [FpgaOp("a", 2_000_000)])
        tb = Task("tb", [FpgaOp("b", 1)], arrival=1e-3)
        h.run([ta, tb])
        a_done = next(e for e in h.kernel.trace.events
                      if e.kind == "fpga-complete" and e.task == "ta")
        b_load = next(e for e in h.kernel.trace.events
                      if e.kind == "fpga-load" and e.task == "tb")
        assert b_load.time < a_done.time  # overlapped


class TestChargeAccounting:
    def test_unload_of_absent_handle_is_noop(self, partial_registry, harness):
        svc = ProbeService(partial_registry)
        h = harness(svc)

        def body():
            yield from svc._charge_unload(None, "ghost")

        h.sim.process(body())
        h.sim.run()
        assert svc.metrics.n_unloads == 0

    def test_arch_mismatch_rejected(self, partial_registry):
        other = Fpga(get_family("VF12"))
        with pytest.raises(VfpgaError, match="architectures differ"):
            ProbeService(partial_registry, fpga=other)

    def test_exec_accounts_to_both_sides(self, partial_registry, harness):
        svc = ProbeService(partial_registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a", 1000, io_words=100)])
        h.run([t])
        assert t.accounting.fpga_exec_time == pytest.approx(
            svc.metrics.exec_time
        )
        assert t.accounting.fpga_io_time == pytest.approx(svc.metrics.io_time)
        assert t.accounting.fpga_io_time > 0
