"""Baseline service tests: merged-resident, software-only, non-preemptable."""

import pytest

from repro.core import (
    CapacityError,
    ConfigRegistry,
    MergedResidentService,
    NonPreemptableService,
    SoftwareOnlyService,
    shelf_pack,
)
from repro.device import get_family
from repro.osim import CpuBurst, FpgaOp, Task


class TestShelfPack:
    def test_disjoint_and_inside(self, arch):
        reg = ConfigRegistry(arch)
        for i, (w, h) in enumerate([(3, 4), (5, 2), (4, 4), (2, 6), (6, 3)]):
            reg.register_synthetic(f"e{i}", w, h)
        anchors = shelf_pack(reg.entries(), arch.width, arch.height)
        rects = [
            reg.get(n).bitstream.anchored_at(*a).region
            for n, a in anchors.items()
        ]
        for i, r1 in enumerate(rects):
            assert arch.full_rect.contains_rect(r1)
            for r2 in rects[i + 1:]:
                assert not r1.overlaps(r2)

    def test_overflow_raises(self, arch):
        reg = ConfigRegistry(arch)
        for i in range(5):
            reg.register_synthetic(f"wide{i}", 6, arch.height)
        with pytest.raises(CapacityError, match="do not fit"):
            shelf_pack(reg.entries(), arch.width, arch.height)

    def test_single_too_large(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("big", arch.width, arch.height)
        with pytest.raises(CapacityError):
            shelf_pack(reg.entries(), arch.width - 1, arch.height)


class TestMergedResident:
    def fits_registry(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("a", 4, 4, critical_path=20e-9)
        reg.register_synthetic("b", 4, 4, critical_path=20e-9)
        reg.register_synthetic("c", 4, 4, critical_path=20e-9)
        return reg

    def test_zero_steady_state_reconfig(self, arch, harness):
        reg = self.fits_registry(arch)
        svc = MergedResidentService(reg)
        h = harness(svc)
        tasks = [
            Task(f"t{i}", [FpgaOp(c, 1000), CpuBurst(1e-4), FpgaOp(c, 1000)])
            for i, c in enumerate(["a", "b", "c"])
        ]
        stats = h.run(tasks)
        assert svc.boot_load_time > 0
        assert stats.total_fpga_reconfig == 0  # nothing charged to tasks
        assert svc.metrics.n_hits == 6
        assert stats.useful_fraction == pytest.approx(1.0)

    def test_different_circuits_overlap_in_time(self, arch, harness):
        reg = self.fits_registry(arch)
        svc = MergedResidentService(reg)
        h = harness(svc)
        # 1000 cycles * 20ns = 20us each; if they overlap, makespan << 3x.
        tasks = [Task(f"t{i}", [FpgaOp(c, 50000)]) for i, c in
                 enumerate(["a", "b", "c"])]
        stats = h.run(tasks)
        assert stats.makespan < 2 * 50000 * 20e-9

    def test_same_circuit_serializes(self, arch, harness):
        reg = self.fits_registry(arch)
        svc = MergedResidentService(reg)
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("a", 50000)]) for i in range(3)]
        stats = h.run(tasks)
        assert stats.makespan >= 3 * 50000 * 20e-9

    def test_capacity_error_when_not_fitting(self, registry, harness):
        # The shared fixture's total width (3+3+4+6+4+4) exceeds VF12.
        svc = MergedResidentService(registry)
        with pytest.raises(CapacityError):
            harness(svc)  # boot-time packing happens at attach


class TestSoftwareOnly:
    def test_slowdown_applied(self, registry, harness):
        svc = SoftwareOnlyService(registry, slowdown=10.0)
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 100000)])
        stats = h.run([t])
        hw_time = 100000 * 20e-9
        assert t.accounting.cpu_time == pytest.approx(10.0 * hw_time)
        assert stats.total_fpga_exec == 0  # nothing ran on the fabric

    def test_ops_serialize_on_cpu(self, registry, harness):
        svc = SoftwareOnlyService(registry, slowdown=10.0)
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("a3", 100000)]) for i in range(2)]
        stats = h.run(tasks)
        assert stats.makespan >= 2 * 10.0 * 100000 * 20e-9

    def test_validation(self, registry):
        with pytest.raises(ValueError):
            SoftwareOnlyService(registry, slowdown=0)


class TestNonPreemptable:
    def test_fifo_serialization(self, registry, harness):
        """Paper §4: the non-preemptable FPGA forces FIFO-like service."""
        svc = NonPreemptableService(registry)
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("a3", 100000)]) for i in range(3)]
        h.run(tasks)
        done = sorted(
            (t.accounting.completion, t.name) for t in tasks
        )
        assert [name for _t, name in done] == ["t0", "t1", "t2"]

    def test_affinity_skips_reload(self, registry, harness):
        svc = NonPreemptableService(registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 100), FpgaOp("a3", 100), FpgaOp("b3", 100)])
        h.run([t])
        assert svc.metrics.n_loads == 2   # a3 once, b3 once
        assert svc.metrics.n_hits == 1    # the repeated a3

    def test_exact_fit_device_accepted(self, harness):
        small = ConfigRegistry(get_family("VF4"))
        small.register_synthetic("w4", 4, 4)
        svc = NonPreemptableService(small)
        h = harness(svc)
        stats = h.run([Task("t", [FpgaOp("w4", 10)])])
        assert stats.n_tasks == 1
        assert svc.metrics.n_loads == 1

    def test_reconfig_charged_to_requesting_task(self, registry, harness):
        svc = NonPreemptableService(registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("d6", 10)])
        h.run([t])
        assert t.accounting.fpga_reconfig_time > 0
        assert t.accounting.n_reconfigs == 1

    def test_load_time_scales_with_region_width(self, registry, harness):
        svc = NonPreemptableService(registry)
        h = harness(svc)
        t3 = Task("t3", [FpgaOp("a3", 10)])
        t6 = Task("t6", [FpgaOp("d6", 10)])
        h.run([t3, t6])
        assert (
            t6.accounting.fpga_reconfig_time
            > t3.accounting.fpga_reconfig_time
        )
