"""Content-addressed bitstream cache and registry memoisation."""

import numpy as np
import pytest

from repro.core import BitstreamCache, ConfigRegistry, bitstream_digest, synthetic_bitstream
from repro.device import Architecture, FrameCodec


@pytest.fixture
def arch():
    return Architecture("t", 8, 4, k=4, channel_width=4)


def anchored(arch, name, w, h, n_ffs, x, y):
    return synthetic_bitstream(name, arch, w, h, n_ffs).anchored_at(x, y)


class TestBitstreamDigest:
    def test_anchor_independent(self, arch):
        a = anchored(arch, "c", 3, 4, 5, 0, 0)
        b = anchored(arch, "c", 3, 4, 5, 4, 0)
        assert bitstream_digest(a) == bitstream_digest(b)

    def test_content_sensitive(self, arch):
        a = anchored(arch, "c", 3, 4, 5, 0, 0)
        b = anchored(arch, "c", 3, 4, 6, 0, 0)  # one more flip-flop
        c = anchored(arch, "c", 4, 4, 5, 0, 0)  # wider region
        assert bitstream_digest(a) != bitstream_digest(b)
        assert bitstream_digest(a) != bitstream_digest(c)

    def test_memoised_on_instance(self, arch):
        a = anchored(arch, "c", 3, 4, 5, 0, 0)
        d = bitstream_digest(a)
        assert bitstream_digest(a) is d  # same bytes object — cached

    def test_name_is_not_content(self, arch):
        a = anchored(arch, "left", 3, 4, 0, 0, 0)
        b = anchored(arch, "right", 3, 4, 0, 0, 0)
        # Synthetic FF labels embed the name, so compare logic-free ones.
        assert bitstream_digest(a) == bitstream_digest(b)


class TestBitstreamCache:
    def test_miss_then_hit(self, arch):
        cache = BitstreamCache(arch)
        bs = anchored(arch, "c", 3, 4, 5, 1, 0)
        img1, out1 = cache.frames_for(bs)
        img2, out2 = cache.frames_for(bs)
        assert (out1, out2) == ("miss", "hit")
        assert img1 is img2
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "relocations": 0,
        }

    def test_horizontal_relocation_matches_direct_encode(self, arch):
        cache = BitstreamCache(arch)
        codec = FrameCodec(arch)
        cache.frames_for(anchored(arch, "c", 3, 4, 5, 0, 0))
        moved = anchored(arch, "c", 3, 4, 5, 4, 0)
        img, outcome = cache.frames_for(moved)
        assert outcome == "reloc"
        want = codec.build_frames(moved.clbs, moved.switches, moved.iobs)
        assert np.array_equal(img, want)

    def test_vertical_move_is_a_miss(self):
        arch = Architecture("t", 4, 8, k=4, channel_width=4)
        cache = BitstreamCache(arch)
        cache.frames_for(anchored(arch, "c", 3, 4, 5, 0, 0))
        _, outcome = cache.frames_for(anchored(arch, "c", 3, 4, 5, 0, 4))
        assert outcome == "miss"

    def test_images_are_read_only(self, arch):
        cache = BitstreamCache(arch)
        img, _ = cache.frames_for(anchored(arch, "c", 3, 4, 5, 0, 0))
        with pytest.raises(ValueError):
            img[0, 0] = 1

    def test_clear(self, arch):
        cache = BitstreamCache(arch)
        cache.frames_for(anchored(arch, "c", 3, 4, 5, 0, 0))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0


class TestRegistryMemoisation:
    def test_translated_identity(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("c", 3, 4, n_state_bits=5)
        a = reg.translated("c", (1, 0))
        assert reg.translated("c", (1, 0)) is a
        assert reg.translated("c", (2, 0)) is not a

    def test_reregister_invalidates(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("c", 3, 4, n_state_bits=5)
        stale = reg.translated("c", (0, 0))
        reg.unregister("c")
        reg.register_synthetic("c", 3, 4, n_state_bits=6)  # replace content
        fresh = reg.translated("c", (0, 0))
        assert fresh is not stale
        assert fresh.n_state_bits == 6

    def test_unregister_invalidates_and_removes(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("c", 3, 4)
        reg.translated("c", (0, 0))
        reg.unregister("c")
        assert "c" not in reg
        from repro.core import UnknownConfigError
        with pytest.raises(UnknownConfigError):
            reg.translated("c", (0, 0))

    def test_shared_bitcache_ends_reencoding(self, arch):
        """The registry memo plus the content cache make a repeat load of
        the same circuit at the same anchor metadata-only."""
        reg = ConfigRegistry(arch)
        reg.register_synthetic("c", 3, 4, n_state_bits=5)
        bs = reg.translated("c", (0, 0))
        reg.bitcache.frames_for(bs)
        _, outcome = reg.bitcache.frames_for(reg.translated("c", (0, 0)))
        assert outcome == "hit"
