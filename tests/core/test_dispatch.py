"""Board-dispatch engine tests (multi-device policy)."""

import pytest

from repro.core import (
    DISPATCH_POLICIES,
    AffinityDispatch,
    LeastBusyDispatch,
    LeastOccupancyDispatch,
    MultiDeviceService,
    RoundRobinDispatch,
    make_dispatch,
)
from repro.osim import FpgaOp, Task


class _FakeFpga:
    def __init__(self, free):
        self._free = free

    def free_area(self):
        return self._free


class _FakeBoard:
    def __init__(self, resident=(), free=100):
        self._resident = set(resident)
        self.fpga = _FakeFpga(free)

    def is_resident(self, config):
        return config in self._resident


class TestFactory:
    @pytest.mark.parametrize("name", sorted(DISPATCH_POLICIES))
    def test_known_names(self, name):
        policy = make_dispatch(name)
        assert policy.name == name

    def test_instance_passthrough(self):
        policy = RoundRobinDispatch()
        assert make_dispatch(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown board dispatch"):
            make_dispatch("psychic")


class TestChoices:
    def test_affinity_prefers_resident(self):
        boards = [_FakeBoard(), _FakeBoard(resident=["a3"]), _FakeBoard()]
        assert AffinityDispatch().choose("a3", boards, [0, 9, 0]) == 1

    def test_affinity_falls_back_to_least_busy(self):
        boards = [_FakeBoard(), _FakeBoard(), _FakeBoard()]
        assert AffinityDispatch().choose("a3", boards, [2, 1, 3]) == 1

    def test_least_busy_ignores_residency(self):
        boards = [_FakeBoard(resident=["a3"]), _FakeBoard()]
        assert LeastBusyDispatch().choose("a3", boards, [5, 0]) == 1

    def test_least_busy_ties_to_lowest_index(self):
        boards = [_FakeBoard(), _FakeBoard()]
        assert LeastBusyDispatch().choose("a3", boards, [1, 1]) == 0

    def test_round_robin_cycles(self):
        boards = [_FakeBoard(), _FakeBoard(), _FakeBoard()]
        rr = RoundRobinDispatch()
        picks = [rr.choose("a3", boards, [0, 0, 0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_occupancy_takes_most_free(self):
        boards = [_FakeBoard(free=10), _FakeBoard(free=80),
                  _FakeBoard(free=40)]
        assert LeastOccupancyDispatch().choose("a3", boards,
                                               [0, 0, 0]) == 1

    def test_least_occupancy_breaks_ties_by_load(self):
        boards = [_FakeBoard(free=50), _FakeBoard(free=50)]
        assert LeastOccupancyDispatch().choose("a3", boards, [3, 1]) == 1


class TestServiceIntegration:
    def test_default_is_affinity(self, registry):
        svc = MultiDeviceService(registry, 2)
        assert isinstance(svc.dispatch, AffinityDispatch)

    def test_round_robin_reloads_on_both_boards(self, registry, harness):
        """The oblivious control arm: two ops on the same config land on
        different boards, so the second op is a miss, not a hit."""
        svc = MultiDeviceService(registry, 2, dispatch="round-robin")
        h = harness(svc)
        h.run([Task("t", [FpgaOp("a3", 100), FpgaOp("a3", 100)])])
        assert svc.metrics.n_loads == 2
        assert svc.metrics.n_hits == 0

    def test_affinity_reuses_resident_board(self, registry, harness):
        svc = MultiDeviceService(registry, 2, dispatch="affinity")
        h = harness(svc)
        h.run([Task("t", [FpgaOp("a3", 100), FpgaOp("a3", 100)])])
        assert svc.metrics.n_loads == 1
        assert svc.metrics.n_hits == 1

    def test_least_occupancy_completes(self, registry, harness):
        svc = MultiDeviceService(registry, 2, dispatch="least-occupancy")
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("a3" if i % 2 else "b3", 1000)])
                 for i in range(4)]
        stats = h.run(tasks)
        assert stats.n_tasks == 4

    def test_bad_choice_rejected(self, registry, harness):
        class OffBoard(LeastBusyDispatch):
            name = "off-board"

            def choose(self, config, boards, in_flight):
                return len(boards)  # out of range

        svc = MultiDeviceService(registry, 2, dispatch=OffBoard())
        h = harness(svc)
        with pytest.raises(ValueError, match="board"):
            h.run([Task("t", [FpgaOp("a3", 100)])])
