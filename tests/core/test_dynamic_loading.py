"""Dynamic-loading service tests (paper §3)."""

import pytest

from repro.core import (
    Adaptive,
    DynamicLoadingService,
    Rollback,
    SaveRestore,
)
from repro.osim import FpgaOp, Task

CP = 20e-9  # synthetic entries' critical path (see conftest)


def op_time(cycles):
    return cycles * CP


class TestResidencyAffinity:
    def test_repeat_use_hits(self, registry, harness):
        svc = DynamicLoadingService(registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 100), FpgaOp("a3", 100)])
        h.run([t])
        assert svc.metrics.n_loads == 1
        assert svc.metrics.n_hits == 1

    def test_alternation_thrashes(self, registry, harness):
        """a-b-a-b forces a download per op — the §3 overhead scenario."""
        svc = DynamicLoadingService(registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 100), FpgaOp("b3", 100),
                       FpgaOp("a3", 100), FpgaOp("b3", 100)])
        h.run([t])
        assert svc.metrics.n_loads == 4
        assert svc.metrics.n_hits == 0

    def test_previous_config_unloaded(self, registry, harness):
        svc = DynamicLoadingService(registry)
        h = harness(svc)
        h.run([Task("t", [FpgaOp("a3", 10), FpgaOp("b3", 10)])])
        assert svc.resident_handles() == {"b3"}


class TestNoPreemption:
    def test_ops_run_to_completion(self, registry, harness):
        svc = DynamicLoadingService(registry)  # fpga_time_slice=None
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("a3", 200000)]) for i in range(3)]
        h.run(tasks)
        assert svc.metrics.n_preemptions == 0


class TestPreemption:
    def test_combinational_time_sharing(self, registry, harness):
        """Two combinational ops share the fabric in slices at no state
        cost; both finish later than solo but neither monopolizes."""
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(), fpga_time_slice=op_time(50000)
        )
        h = harness(svc)
        a = Task("ta", [FpgaOp("a3", 200000)])
        b = Task("tb", [FpgaOp("a3", 200000)])
        h.run([a, b])
        assert svc.metrics.n_preemptions > 0
        assert svc.metrics.n_state_saves == 0  # combinational: free
        assert svc.metrics.n_rollbacks == 0
        # Progress preserved: total useful time equals both ops exactly.
        assert svc.metrics.exec_time == pytest.approx(2 * op_time(200000))

    def test_sequential_save_restore_charged(self, registry, harness):
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(), fpga_time_slice=op_time(50000)
        )
        h = harness(svc)
        a = Task("ta", [FpgaOp("seq4", 200000)])
        b = Task("tb", [FpgaOp("seq4", 200000)])
        h.run([a, b])
        assert svc.metrics.n_state_saves > 0
        assert svc.metrics.n_state_restores == svc.metrics.n_state_saves
        assert svc.metrics.state_time > 0
        assert svc.metrics.exec_time == pytest.approx(2 * op_time(200000))

    def test_rollback_loses_progress(self, registry, harness):
        svc = DynamicLoadingService(
            registry, preemption=Rollback(), fpga_time_slice=op_time(50000)
        )
        h = harness(svc)
        a = Task("ta", [FpgaOp("seq4", 200000)])
        b = Task("tb", [FpgaOp("seq4", 200000)])
        h.run([a, b])
        assert svc.metrics.n_rollbacks > 0
        # Redone work: fabric time exceeds the two ops' net demand.
        assert svc.metrics.exec_time > 2 * op_time(200000)

    def test_rollback_livelock_protection(self, registry, harness):
        """Exponential patience guarantees completion even when the slice
        is far smaller than the op (naive rollback would loop forever)."""
        svc = DynamicLoadingService(
            registry, preemption=Rollback(), fpga_time_slice=op_time(1000)
        )
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("seq4", 500000)]) for i in range(3)]
        stats = h.run(tasks)  # must terminate
        assert stats.n_tasks == 3

    def test_hidden_state_never_preempted(self, registry, harness):
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(), fpga_time_slice=op_time(1000)
        )
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("hidden4", 100000)]) for i in range(2)]
        h.run(tasks)
        assert svc.metrics.n_preemptions == 0
        assert svc.metrics.n_state_saves == 0

    def test_adaptive_prefers_rollback_early(self, registry, harness):
        svc = DynamicLoadingService(
            registry, preemption=Adaptive(), fpga_time_slice=op_time(100)
        )
        h = harness(svc)
        # Tiny slice: progress at first preemption is far below the state
        # movement cost, so adaptive rolls back.
        tasks = [Task(f"t{i}", [FpgaOp("seq4", 300000)]) for i in range(2)]
        h.run(tasks)
        assert svc.metrics.n_rollbacks > 0

    def test_preemption_charges_preempted_task(self, registry, harness):
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(), fpga_time_slice=op_time(50000)
        )
        h = harness(svc)
        a = Task("ta", [FpgaOp("seq4", 200000)])
        b = Task("tb", [FpgaOp("seq4", 200000)])
        h.run([a, b])
        assert a.accounting.n_preemptions + b.accounting.n_preemptions == \
            svc.metrics.n_preemptions
        assert a.accounting.fpga_state_time > 0


class TestAccounting:
    def test_wait_time_recorded(self, registry, harness):
        svc = DynamicLoadingService(registry)
        h = harness(svc)
        a = Task("ta", [FpgaOp("a3", 500000)])
        b = Task("tb", [FpgaOp("b3", 100)])
        h.run([a, b])
        assert b.accounting.fpga_wait_time > 0

    def test_validation(self, registry):
        with pytest.raises(ValueError):
            DynamicLoadingService(registry, fpga_time_slice=0)

    def test_io_time_charged_once_per_op(self, registry, harness):
        svc = DynamicLoadingService(registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 100, io_words=1000)])
        h.run([t])
        assert t.accounting.fpga_io_time == pytest.approx(1000 / svc.mux.word_rate)
