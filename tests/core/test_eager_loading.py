"""Eager (implicit) dynamic loading tests (paper §3)."""

import pytest

from repro.core import DynamicLoadingService
from repro.osim import CpuBurst, FpgaOp, Task

CP = 20e-9


class TestEagerLoading:
    def test_prefetch_hides_download_under_cpu(self, registry, harness):
        def makespan(eager):
            svc = DynamicLoadingService(registry, eager=eager)
            h = harness(svc)
            t = Task("t", [
                CpuBurst(20e-3), FpgaOp("a3", 1000),
                CpuBurst(20e-3), FpgaOp("b3", 1000),
            ])
            stats = h.run([t])
            return stats.makespan, svc

        lazy, _ = makespan(False)
        eager, svc = makespan(True)
        assert eager < lazy
        assert svc.n_prefetches >= 1

    def test_prefetch_never_fires_when_fabric_busy(self, registry, harness):
        svc = DynamicLoadingService(registry, eager=True)
        h = harness(svc)
        # Task A holds the fabric with a long op; task B's dispatches must
        # not sneak a prefetch in (it would have to wait for A anyway).
        a = Task("a", [FpgaOp("a3", 2_000_000)])
        b = Task("b", [CpuBurst(1e-3), CpuBurst(1e-3), FpgaOp("b3", 100)],
                 arrival=1e-4)
        h.run([a, b])
        # b's op loaded lazily after a finished: exactly 2 loads total,
        # and the b3 load must not have interrupted a3's execution.
        assert svc.metrics.n_loads == 2

    def test_prefetch_skipped_when_config_resident(self, registry, harness):
        svc = DynamicLoadingService(registry, eager=True)
        h = harness(svc)
        t = Task("t", [
            CpuBurst(5e-3), FpgaOp("a3", 100),
            CpuBurst(5e-3), FpgaOp("a3", 100),  # same config: no prefetch
        ])
        h.run([t])
        assert svc.metrics.n_loads == 1
        assert svc.n_prefetches <= 1

    def test_lazy_by_default(self, registry, harness):
        svc = DynamicLoadingService(registry)
        h = harness(svc)
        h.run([Task("t", [CpuBurst(5e-3), FpgaOp("a3", 100)])])
        assert svc.n_prefetches == 0

    def test_eager_preserves_corre(self, registry, harness):
        """Same total useful work with and without prefetching."""
        def exec_time(eager):
            svc = DynamicLoadingService(registry, eager=eager)
            h = harness(svc)
            tasks = [
                Task(f"t{i}", [CpuBurst(2e-3), FpgaOp("a3", 5000),
                               CpuBurst(2e-3), FpgaOp("b3", 5000)])
                for i in range(3)
            ]
            stats = h.run(tasks)
            return stats.total_fpga_exec

        assert exec_time(True) == pytest.approx(exec_time(False))

    def test_factory_accepts_eager(self, registry, harness):
        from repro.core import make_service

        svc = make_service("dynamic", registry, eager=True)
        assert svc.eager
