"""Engine-parity tests: pluggable engines preserve default behavior.

The multi-layer refactor routed every policy's placement, victim
selection, and demand-fault handling through pluggable engines.  These
tests pin the contract: a service built with *default* parameters and a
service built with the *explicitly named* default engines produce the
same telemetry stream event for event — timestamps, ordering, payloads.
(``source`` attributions are minted per process and are normalized out.)

The committed ``benchmarks/baselines/`` artifacts pin the same property
against the pre-refactor seed via event counts; these tests keep it
pinned at full event granularity without needing the old code.
"""

import pytest

from repro.core import (
    ConfigRegistry,
    LruReplacement,
    make_cpu_scheduler,
    make_paged_circuit,
    make_segmented_circuit,
    make_service,
)
from repro.device import get_family
from repro.osim import (
    Fifo,
    FpgaOp,
    Kernel,
    PriorityScheduler,
    RoundRobin,
    Task,
    uniform_workload,
)
from repro.sim import Simulator
from repro.telemetry import EventBus, EventLog


def canon(events):
    """Events as comparable tuples, ignoring process-global sources."""
    out = []
    for e in events:
        fields = {k: v for k, v in vars(e).items() if k != "source"}
        out.append((type(e).__name__,
                    tuple(sorted(fields.items()))))
    return out


def run_events(policy, build, scheduler_factory=None):
    """One full simulated run; returns the canonical event stream.

    ``build`` makes a fresh (registry, tasks, policy_kw) triple so the
    two compared runs share nothing mutable.  ``scheduler_factory``
    overrides the CPU scheduler (default: the seed RoundRobin).
    """
    registry, tasks, policy_kw = build()
    sim = Simulator()
    service = make_service(policy, registry, **policy_kw)
    bus = EventBus()
    log = EventLog(bus)
    if scheduler_factory is None:
        def scheduler_factory():
            return RoundRobin(time_slice=1e-3)
    kernel = Kernel(sim, scheduler_factory(), service,
                    context_switch=0.0, bus=bus)
    kernel.spawn_all(tasks)
    kernel.run()
    return canon(log.events)


def contended_build(**policy_kw):
    """Four circuits cycling through a 12-wide device: every policy
    faults, evicts, and re-places."""
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        names = []
        for i, w in enumerate([3, 3, 4, 6]):
            reg.register_synthetic(f"f{i}", w, arch.height,
                                   critical_path=20e-9)
            names.append(f"f{i}")
        tasks = uniform_workload(
            names, n_tasks=6, ops_per_task=4, cpu_burst=0.2e-3,
            cycles=50_000, seed=11,
        )
        return reg, tasks, policy_kw
    return build


def paged_build(**policy_kw):
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        circ = make_paged_circuit(reg, "virt", n_pages=6, page_width=3,
                                  pattern="zipf", seed=5)
        tasks = [Task("t", [FpgaOp("virt", 40)]),
                 Task("u", [FpgaOp("virt", 40)], arrival=1e-4)]
        kw = dict(circuits=[circ], frame_width=3, **policy_kw)
        return reg, tasks, kw
    return build


def segmented_build(**policy_kw):
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        circ = make_segmented_circuit(reg, "virt",
                                      widths=[5, 3, 6, 4, 2, 4],
                                      pattern="zipf", seed=5)
        tasks = [Task("t", [FpgaOp("virt", 40)])]
        kw = dict(circuits=[circ], **policy_kw)
        return reg, tasks, kw
    return build


def overlay_build(**policy_kw):
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        names = []
        for i, w in enumerate([3, 3, 4]):
            reg.register_synthetic(f"f{i}", w, arch.height,
                                   critical_path=20e-9)
            names.append(f"f{i}")
        tasks = uniform_workload(
            names, n_tasks=4, ops_per_task=3, cpu_burst=0.2e-3,
            cycles=50_000, seed=11,
        )
        kw = dict(resident_names=["f0"], **policy_kw)
        return reg, tasks, kw
    return build


CASES = [
    ("fixed",
     contended_build(n_partitions=2),
     contended_build(n_partitions=2, replacement="lru",
                     replacement_seed=0)),
    ("variable",
     contended_build(hold_mode="op"),
     contended_build(hold_mode="op", fit="first", replacement="lru",
                     placement="column-first-fit")),
    ("variable",
     contended_build(hold_mode="op", layout="rect"),
     contended_build(hold_mode="op", layout="rect",
                     placement="bottom-left", replacement="lru")),
    ("overlay",
     overlay_build(),
     overlay_build(replacement="lru", overlay_slots=1)),
    ("paged",
     paged_build(),
     paged_build(replacement="lru")),
    ("segmented",
     segmented_build(),
     segmented_build(replacement="lru",
                     placement="column-first-fit")),
    ("multi",
     contended_build(n_devices=2),
     contended_build(n_devices=2, dispatch="affinity")),
]


@pytest.mark.parametrize(
    "policy,default_build,explicit_build", CASES,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(CASES)],
)
def test_default_equals_explicit_engines(policy, default_build,
                                         explicit_build):
    default_run = run_events(policy, default_build)
    explicit_run = run_events(policy, explicit_build)
    assert default_run == explicit_run
    assert default_run  # the workload actually produced events


def test_replacement_instance_equals_name():
    """Passing a ready-made policy object is the same engine."""
    a = run_events("fixed", contended_build(n_partitions=2))
    b = run_events("fixed", contended_build(n_partitions=2,
                                            replacement=LruReplacement()))
    assert a == b


def test_runs_are_reproducible():
    """The simulation itself is deterministic — the parity comparisons
    above compare real signal, not noise."""
    build = contended_build(hold_mode="op")
    assert run_events("variable", build) == run_events("variable", build)


@pytest.mark.parametrize("policy,build", [
    ("fixed", contended_build(n_partitions=2, replacement="mru")),
    ("fixed", contended_build(n_partitions=2, replacement="random",
                              replacement_seed=7)),
    ("variable", contended_build(hold_mode="op", replacement="fifo")),
    ("variable", contended_build(hold_mode="op", layout="rect",
                                 placement="skyline")),
    ("variable", contended_build(hold_mode="op", layout="rect",
                                 placement="best-fit")),
    ("overlay", overlay_build(replacement="clock")),
    ("paged", paged_build(replacement="random", replacement_seed=3)),
    ("segmented", segmented_build(placement="column-best-fit",
                                  replacement="mru")),
    ("multi", contended_build(n_devices=2, dispatch="round-robin")),
    ("multi", contended_build(n_devices=2, dispatch="least-occupancy")),
])
def test_non_default_engines_complete(policy, build):
    """Every non-default engine drives the same workload to completion
    (the cross-product the benchmarks sweep is actually usable)."""
    events = run_events(policy, build)
    assert any(name == "TaskDone" for name, _fields in events)


def test_seeded_random_replacement_reproducible():
    build_a = paged_build(replacement="random", replacement_seed=9)
    build_b = paged_build(replacement="random", replacement_seed=9)
    assert run_events("paged", build_a) == run_events("paged", build_b)


# -- CPU scheduling engines (PR 6) ----------------------------------------
#
# The seed schedulers became thin strategies over PolicyScheduler; these
# comparisons pin that every policy's event stream is untouched when the
# seed class is swapped for the equivalent engine built by name.

@pytest.mark.parametrize(
    "policy,default_build,explicit_build", CASES,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(CASES)],
)
def test_seed_rr_equals_engine_rr(policy, default_build, explicit_build):
    seed_run = run_events(policy, default_build)
    engine_run = run_events(
        policy, default_build,
        scheduler_factory=lambda: make_cpu_scheduler("rr",
                                                     time_slice=1e-3))
    assert seed_run == engine_run
    assert seed_run


@pytest.mark.parametrize("name,seed_factory", [
    ("fifo", Fifo),
    ("priority", lambda: PriorityScheduler(time_slice=1e-3)),
])
def test_seed_class_equals_engine(name, seed_factory):
    build = contended_build(hold_mode="op")
    kw = {} if name == "fifo" else {"time_slice": 1e-3}
    seed_run = run_events("variable", build, scheduler_factory=seed_factory)
    engine_run = run_events(
        "variable", build,
        scheduler_factory=lambda: make_cpu_scheduler(name, **kw))
    assert seed_run == engine_run
    assert seed_run


def test_fabric_sched_default_equals_explicit():
    """``dynamic`` with no fabric engine named is the seed fixed-quantum
    behavior, event for event (including with a fabric time slice)."""
    kw = dict(preemption="save-restore", fpga_time_slice=1e-3)
    default_run = run_events("dynamic", contended_build(**kw))
    explicit_run = run_events(
        "dynamic", contended_build(fabric_sched="fixed-quantum", **kw))
    assert default_run == explicit_run
    assert default_run


def test_cost_aware_fabric_completes():
    events = run_events(
        "dynamic",
        contended_build(preemption="save-restore", fpga_time_slice=1e-3,
                        fabric_sched="cost-aware"))
    assert any(name == "TaskDone" for name, _fields in events)
