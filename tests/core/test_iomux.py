"""Pin multiplexer model tests (paper §2 I/O virtualization)."""

import pytest

from repro.core import CapacityError, PinMultiplexer


class TestStaticModel:
    def test_under_subscription_full_rate(self):
        mux = PinMultiplexer(64, word_rate=1e6)
        t = mux.transfer_time(1000, virtual_pins=32)
        assert t.factor == 1.0
        assert t.seconds == pytest.approx(1e-3)

    def test_oversubscription_dilates(self):
        mux = PinMultiplexer(64, word_rate=1e6)
        t = mux.transfer_time(1000, virtual_pins=128)
        assert t.factor == pytest.approx(2.0)
        assert t.seconds == pytest.approx(2e-3)

    def test_factor_scales_linearly(self):
        mux = PinMultiplexer(10)
        factors = [
            mux.transfer_time(1, virtual_pins=v).factor for v in (10, 20, 40, 80)
        ]
        assert factors == [1.0, 2.0, 4.0, 8.0]

    def test_concurrent_demand_counts(self):
        mux = PinMultiplexer(64)
        t = mux.transfer_time(100, virtual_pins=32, concurrent_pins=96)
        assert t.factor == pytest.approx(2.0)

    def test_negative_rejected(self):
        mux = PinMultiplexer(8)
        with pytest.raises(ValueError):
            mux.transfer_time(-1, 1)
        with pytest.raises(ValueError):
            mux.transfer_time(1, -1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PinMultiplexer(0)
        with pytest.raises(ValueError):
            PinMultiplexer(8, word_rate=0)


class TestDynamicBookkeeping:
    def test_begin_end_balance(self):
        mux = PinMultiplexer(16)
        mux.begin("a", 8)
        mux.begin("b", 8)
        assert mux.oversubscription() == 1.0
        mux.begin("c", 16)
        assert mux.oversubscription() == 2.0
        mux.end("c", 16)
        mux.end("a", 8)
        mux.end("b", 8)
        assert mux.active == {}

    def test_over_release_raises(self):
        mux = PinMultiplexer(16)
        mux.begin("a", 4)
        with pytest.raises(CapacityError):
            mux.end("a", 8)

    def test_price_excludes_own_pins_from_others(self):
        mux = PinMultiplexer(16)
        mux.begin("a", 16)
        mux.begin("b", 16)
        t = mux.price_active_transfer("a", 100, 16)
        # a's 16 + b's 16 = 32 over 16 physical -> factor 2
        assert t.factor == pytest.approx(2.0)
        assert mux.metrics.io_time == pytest.approx(t.seconds)

    def test_solo_transfer_full_rate(self):
        mux = PinMultiplexer(16, word_rate=1e6)
        mux.begin("a", 16)
        t = mux.price_active_transfer("a", 500, 16)
        assert t.factor == 1.0
        assert t.seconds == pytest.approx(0.5e-3)
