"""Service-level delta/full equivalence under audit.

The delta engine sits on the config-port hot path of every policy; these
tests run whole managed workloads in both modes under a *strict* auditor
and require the runs to be indistinguishable in everything but charged
port time: identical decoded device state, identical task completions,
zero contract violations — and ``auto`` never charges more port time
than ``full`` on any arm.
"""

import numpy as np
import pytest

from repro.core import ConfigRegistry, make_paged_circuit, make_service
from repro.device import FrameCodec, get_family
from repro.osim import FpgaOp, Kernel, RoundRobin, Task, uniform_workload
from repro.sim import Simulator
from repro.telemetry import Auditor, EventBus, EventLog


def run_policy(policy, build, load_mode):
    """One audited run; returns (service, auditor, events)."""
    registry, tasks, policy_kw = build()
    sim = Simulator()
    service = make_service(policy, registry, load_mode=load_mode,
                           **policy_kw)
    bus = EventBus()
    log = EventLog(bus)
    auditor = Auditor(bus, mode="strict",
                      clb_capacity=registry.arch.n_clbs)
    kernel = Kernel(sim, RoundRobin(time_slice=1e-3), service,
                    context_switch=0.0, bus=bus)
    kernel.spawn_all(tasks)
    kernel.run()
    auditor.finish()
    return service, auditor, log.events


def contended_build(**policy_kw):
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        names = []
        for i, w in enumerate([3, 3, 4, 6]):
            reg.register_synthetic(f"f{i}", w, arch.height,
                                   n_state_bits=2 * w,
                                   critical_path=20e-9)
            names.append(f"f{i}")
        tasks = uniform_workload(
            names, n_tasks=6, ops_per_task=4, cpu_burst=0.2e-3,
            cycles=50_000, seed=11,
        )
        return reg, tasks, policy_kw
    return build


def sequential_build(**policy_kw):
    """One task touching four circuits that cannot all fit — every
    activation faults and evicts, but the op order (hence the placement
    decisions) cannot depend on how fast loads are charged."""
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        for i, w in enumerate([3, 3, 4, 6]):
            reg.register_synthetic(f"f{i}", w, arch.height,
                                   n_state_bits=2 * w,
                                   critical_path=20e-9)
        ops = [FpgaOp(f"f{i % 4}", 30) for i in range(10)]
        return reg, [Task("t", ops)], policy_kw
    return build


def paged_build(**policy_kw):
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        circ = make_paged_circuit(reg, "virt", n_pages=6, page_width=3,
                                  pattern="zipf", seed=5)
        tasks = [Task("t", [FpgaOp("virt", 40)]),
                 Task("u", [FpgaOp("virt", 40)], arrival=1e-4)]
        kw = dict(circuits=[circ], frame_width=3, **policy_kw)
        return reg, tasks, kw
    return build


def decoded_state(service):
    """The device state as the codec sees it — config content only."""
    codec = FrameCodec(service.fpga.arch)
    return codec.decode_frames(service.fpga.ram.frames)


EQUIV_CASES = [
    ("dynamic", contended_build),
    ("variable", lambda: sequential_build(hold_mode="op")),
    ("paged", paged_build),
]


@pytest.mark.parametrize(
    "policy,make_build", EQUIV_CASES, ids=[c[0] for c in EQUIV_CASES],
)
def test_delta_equals_full_under_strict_audit(policy, make_build):
    full_svc, full_aud, full_ev = run_policy(policy, make_build(), "full")
    delta_svc, delta_aud, delta_ev = run_policy(policy, make_build(), "delta")
    # Strict mode would have raised already; belt and braces:
    assert full_aud.violations == []
    assert delta_aud.violations == []
    # Identical post-run device state, decoded — not just the raw bits.
    assert decoded_state(full_svc) == decoded_state(delta_svc)
    assert np.array_equal(full_svc.fpga.ram.frames,
                          delta_svc.fpga.ram.frames)
    # Same tasks completed, in the same order.
    full_done = [vars(e)["task"] for e in full_ev
                 if type(e).__name__ == "TaskDone"]
    delta_done = [vars(e)["task"] for e in delta_ev
                  if type(e).__name__ == "TaskDone"]
    assert full_done == delta_done and full_done
    # The engine only removes port work, never adds it.
    assert (delta_svc.fpga.port_busy_time
            <= full_svc.fpga.port_busy_time + 1e-12)


AUTO_CASES = EQUIV_CASES + [
    ("variable-contended", lambda: contended_build(hold_mode="op")),
    ("fixed", lambda: contended_build(n_partitions=2)),
    ("overlay", lambda: _overlay_build()),
]


def _overlay_build():
    def build():
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        names = []
        for i, w in enumerate([3, 3, 4]):
            reg.register_synthetic(f"f{i}", w, arch.height,
                                   n_state_bits=w, critical_path=20e-9)
            names.append(f"f{i}")
        tasks = uniform_workload(
            names, n_tasks=4, ops_per_task=3, cpu_burst=0.2e-3,
            cycles=50_000, seed=11,
        )
        return reg, tasks, dict(resident_names=["f0"])
    return build


@pytest.mark.parametrize(
    "policy,make_build", AUTO_CASES, ids=[c[0] for c in AUTO_CASES],
)
def test_auto_never_charges_more_than_full(policy, make_build):
    """Acceptance: ``--load-mode auto`` is a free lunch on every arm.

    (Device-state equality is pinned by the sequential equivalence test
    above; under contention the cheaper loads may legitimately lead the
    policies to different — equally valid — placements.)
    """
    policy = policy.split("-")[0]
    full_svc, _, _ = run_policy(policy, make_build(), "full")
    auto_svc, auto_aud, _ = run_policy(policy, make_build(), "auto")
    assert auto_aud.violations == []
    assert (auto_svc.fpga.port_busy_time
            <= full_svc.fpga.port_busy_time + 1e-12)


def test_delta_events_carry_mode_and_frames():
    _, _, events = run_policy("paged", paged_build(), "delta")
    loads = [e for e in events if type(e).__name__ == "Load"]
    assert loads
    assert all(e.mode in ("delta", "partial") for e in loads)
    assert all(e.cache in ("hit", "miss", "reloc") for e in loads)
    # frames_written is the engine's saving: never more than addressed.
    assert all(e.frames_written <= e.frames for e in loads)
    assert any(e.frames_written < e.frames for e in loads)


def test_full_mode_stream_is_unchanged_shape():
    """Default mode keeps the legacy stream: every load is charged as a
    full partial write of the addressed frames."""
    _, _, events = run_policy("paged", paged_build(), "full")
    loads = [e for e in events if type(e).__name__ == "Load"]
    assert loads
    assert all(e.mode == "partial" for e in loads)
    assert all(e.frames_written == e.frames for e in loads)
