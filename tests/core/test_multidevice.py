"""Multi-board service tests (the paper's §2 virtual-computer vision)."""

import pytest

from repro.core import (
    MultiDeviceService,
    VariablePartitionService,
    make_service,
)
from repro.osim import FpgaOp, Task

CP = 20e-9


class TestConstruction:
    def test_needs_a_device(self, registry):
        with pytest.raises(ValueError):
            MultiDeviceService(registry, 0)

    def test_boards_have_own_devices(self, registry):
        svc = MultiDeviceService(registry, 3)
        fpgas = {id(b.fpga) for b in svc.boards}
        assert len(fpgas) == 3

    def test_factory_name(self, registry):
        svc = make_service("multi", registry, n_devices=2)
        assert len(svc.boards) == 2

    def test_custom_board_factory(self, registry):
        svc = MultiDeviceService(
            registry, 2,
            board_factory=lambda reg: VariablePartitionService(reg, gc="merge"),
        )
        assert all(isinstance(b, VariablePartitionService) for b in svc.boards)


class TestPlacement:
    def test_two_boards_double_throughput(self, registry, harness):
        def makespan(n):
            svc = MultiDeviceService(registry, n)
            h = harness(svc)
            tasks = [Task(f"t{i}", [FpgaOp("a3" if i % 2 else "b3", 500_000)])
                     for i in range(4)]
            return h.run(tasks).makespan

        assert makespan(2) < makespan(1) * 0.7

    def test_affinity_prefers_resident_board(self, registry, harness):
        svc = MultiDeviceService(registry, 2)
        h = harness(svc)
        # a3 lands on board 0; the second a3 op must reuse it (1 load).
        t = Task("t", [FpgaOp("a3", 100), FpgaOp("a3", 100)])
        h.run([t])
        assert svc.metrics.n_loads == 1
        assert svc.metrics.n_hits == 1

    def test_different_configs_spread_across_boards(self, registry, harness):
        svc = MultiDeviceService(registry, 2)
        h = harness(svc)
        tasks = [Task("ta", [FpgaOp("a3", 500_000)]),
                 Task("tb", [FpgaOp("b3", 500_000)])]
        h.run(tasks)
        per_board = svc.per_board_exec
        assert all(x > 0 for x in per_board)  # both boards did work

    def test_aggregate_metrics_sum_boards(self, registry, harness):
        svc = MultiDeviceService(registry, 2)
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp("a3", 1000)]) for i in range(3)]
        stats = h.run(tasks)
        assert svc.metrics.exec_time == pytest.approx(stats.total_fpga_exec)
        assert svc.metrics.n_ops == sum(b.metrics.n_ops for b in svc.boards)

    def test_board_choice_traced(self, registry, harness):
        svc = MultiDeviceService(registry, 2)
        h = harness(svc)
        h.run([Task("t", [FpgaOp("a3", 100)])])
        events = h.kernel.trace.of_kind("fpga-board")
        assert events and "board" in events[0].detail
