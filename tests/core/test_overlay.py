"""Overlay service tests (paper §2 overlaying)."""

import pytest

from repro.core import CapacityError, OverlayService
from repro.osim import FpgaOp, Task


class TestBootLayout:
    def test_pinned_set_loaded_at_boot(self, registry, harness):
        svc = OverlayService(registry, resident_names=["a3", "b3"])
        harness(svc)
        assert {"a3", "b3"} <= svc.resident_handles()
        assert svc.overlay_width == 12 - 6

    def test_pinned_set_too_wide(self, registry, harness):
        svc = OverlayService(registry, resident_names=["d6", "c4", "a3"])
        with pytest.raises(CapacityError, match="pinned set"):
            harness(svc)

    def test_duplicates_deduped(self, registry, harness):
        svc = OverlayService(registry, resident_names=["a3", "a3"])
        harness(svc)
        assert svc.overlay_width == 9


class TestExecution:
    def test_pinned_never_reloads(self, registry, harness):
        svc = OverlayService(registry, resident_names=["a3"])
        h = harness(svc)
        boot_loads = svc.metrics.n_loads
        h.run([Task("t", [FpgaOp("a3", 10)] * 5)])
        assert svc.metrics.n_loads == boot_loads
        assert svc.metrics.n_hits == 5

    def test_overlay_area_dynamic_loading(self, registry, harness):
        svc = OverlayService(registry, resident_names=["a3"])
        h = harness(svc)
        t = Task("t", [FpgaOp("b3", 10), FpgaOp("c4", 10), FpgaOp("b3", 10)])
        h.run([t])
        # b3, c4, b3 all thrash the single overlay slot.
        assert svc.metrics.n_misses == 3

    def test_overlay_affinity(self, registry, harness):
        svc = OverlayService(registry, resident_names=["a3"])
        h = harness(svc)
        h.run([Task("t", [FpgaOp("b3", 10), FpgaOp("b3", 10)])])
        assert svc.metrics.n_misses == 1
        assert svc.metrics.n_hits == 1

    def test_circuit_wider_than_overlay_area(self, registry, harness):
        svc = OverlayService(registry, resident_names=["d6", "a3"])  # 9 cols
        h = harness(svc)
        with pytest.raises(CapacityError, match="overlay area"):
            h.run([Task("t", [FpgaOp("c4", 10)])])

    def test_pinned_and_overlay_overlap_free(self, registry, harness):
        svc = OverlayService(registry, resident_names=["a3", "b3"])
        h = harness(svc)
        h.run([Task("t", [FpgaOp("c4", 10), FpgaOp("a3", 10)])])
        regions = [b.region for b in svc.fpga.resident.values()]
        for i, r1 in enumerate(regions):
            for r2 in regions[i + 1:]:
                assert not r1.overlaps(r2)

    def test_second_slot_stops_thrashing(self, registry, harness):
        """Two overlay slots cache two circuits at once: the b3/c4/b3
        sequence that thrashes one slot keeps b3 resident with two."""
        svc = OverlayService(registry, resident_names=["a3"],
                             overlay_slots=2)
        h = harness(svc)
        t = Task("t", [FpgaOp("b3", 10), FpgaOp("c4", 10), FpgaOp("b3", 10)])
        h.run([t])
        assert svc.metrics.n_misses == 2
        assert svc.metrics.n_hits == 1

    def test_replacement_engine_picks_slot_victim(self, registry, harness):
        """With both slots full, the pluggable replacement policy decides
        which circuit the new arrival evicts: LRU kills the stale b3,
        MRU kills the fresh c4 — so only MRU re-hits b3 afterwards."""
        def run(policy):
            svc = OverlayService(registry, resident_names=["a3"],
                                 overlay_slots=2, replacement=policy)
            h = harness(svc)
            prog = [FpgaOp("b3", 10), FpgaOp("c4", 10),
                    FpgaOp("seq4", 10), FpgaOp("b3", 10)]
            h.run([Task("t", prog)])
            return svc.metrics
        lru, mru = run("lru"), run("mru")
        assert lru.n_hits == 0 and lru.n_misses == 4
        assert mru.n_hits == 1 and mru.n_misses == 3

    def test_slots_too_narrow_rejected(self, registry, harness):
        """Splitting the overlay area must leave slots wide enough for
        the circuits that will run there."""
        svc = OverlayService(registry, resident_names=["d6"],
                             overlay_slots=2)  # 6 cols -> 3 per slot
        h = harness(svc)
        with pytest.raises(CapacityError, match="overlay area"):
            h.run([Task("t", [FpgaOp("c4", 10)])])

    def test_hot_set_reduces_reconfig_vs_pure_dynamic(self, registry, harness):
        """The paper's point: keeping frequent functions resident cuts the
        download traffic of a skewed workload."""
        from repro.core import DynamicLoadingService

        def workload():
            # a3 hot (3 of 4 ops), c4 rare.
            prog = [FpgaOp("a3", 10), FpgaOp("a3", 10), FpgaOp("c4", 10),
                    FpgaOp("a3", 10)] * 3
            return [Task("t", prog)]

        dyn = DynamicLoadingService(registry)
        h1 = harness(dyn)
        s1 = h1.run(workload())
        ov = OverlayService(registry, resident_names=["a3"])
        h2 = harness(ov)
        s2 = h2.run(workload())
        assert s2.total_fpga_reconfig < s1.total_fpga_reconfig
        assert ov.metrics.n_hits > dyn.metrics.n_hits
