"""Pagination service tests (paper §2 fixed-size demand loading)."""

import pytest

from repro.core import (
    CapacityError,
    ConfigRegistry,
    PagedVfpgaService,
    UnknownConfigError,
    make_paged_circuit,
)
from repro.osim import FpgaOp, Task


@pytest.fixture
def paged_setup(arch):
    reg = ConfigRegistry(arch)
    circ = make_paged_circuit(
        reg, "virt", n_pages=6, page_width=3, pattern="sequential", seed=1
    )
    return reg, circ


class TestConstruction:
    def test_frame_count(self, paged_setup, harness):
        reg, circ = paged_setup
        svc = PagedVfpgaService(reg, [circ], frame_width=3)
        harness(svc)
        assert svc.n_frames == 4

    def test_page_wider_than_frame_rejected(self, paged_setup):
        reg, circ = paged_setup
        with pytest.raises(CapacityError, match="exceeds the frame"):
            PagedVfpgaService(reg, [circ], frame_width=2)

    def test_bad_frame_width(self, paged_setup):
        reg, circ = paged_setup
        with pytest.raises(ValueError):
            PagedVfpgaService(reg, [circ], frame_width=0)

    def test_unknown_circuit_rejected_at_exec(self, paged_setup, harness):
        reg, circ = paged_setup
        svc = PagedVfpgaService(reg, [circ], frame_width=3)
        h = harness(svc)
        with pytest.raises(UnknownConfigError):
            h.run([Task("t", [FpgaOp("ghost", 5)], configs=["ghost"])])


class TestDemandPaging:
    def test_cold_faults_then_hits(self, paged_setup, harness):
        reg, circ = paged_setup
        svc = PagedVfpgaService(reg, [circ], frame_width=3, replacement="lru")
        h = harness(svc)
        # Sequential over 6 pages with 4 frames: first pass 6 faults, and
        # a cyclic sweep keeps faulting under LRU (Belady's anomaly zone).
        h.run([Task("t", [FpgaOp("virt", 6)])])
        assert svc.metrics.n_page_faults == 6
        assert svc.metrics.n_page_accesses == 6

    def test_working_set_fits_no_steady_faults(self, arch, harness):
        reg = ConfigRegistry(arch)
        circ = make_paged_circuit(
            reg, "virt", n_pages=8, page_width=3,
            pattern="looping", working_set=3, seed=1,
        )
        svc = PagedVfpgaService(reg, [circ], frame_width=3, replacement="lru")
        h = harness(svc)
        h.run([Task("t", [FpgaOp("virt", 30)])])
        assert svc.metrics.n_page_faults == 3  # only the cold misses
        assert svc.metrics.fault_rate == pytest.approx(0.1)

    def test_lru_thrashes_on_large_loop_mru_does_not(self, arch, harness):
        """The classic cyclic-sweep result: loop of 5 pages over 4 frames
        makes LRU fault every access while MRU converges."""
        def run(replacement):
            reg = ConfigRegistry(arch)
            circ = make_paged_circuit(
                reg, "virt", n_pages=5, page_width=3,
                pattern="looping", working_set=5, seed=1,
            )
            svc = PagedVfpgaService(
                reg, [circ], frame_width=3, replacement=replacement
            )
            h = harness(svc)
            h.run([Task("t", [FpgaOp("virt", 40)])])
            return svc.metrics.n_page_faults

        assert run("lru") > 2 * run("mru")

    def test_page_table_consistent_after_run(self, paged_setup, harness):
        reg, circ = paged_setup
        svc = PagedVfpgaService(reg, [circ], frame_width=3)
        h = harness(svc)
        h.run([Task("t", [FpgaOp("virt", 13)])])
        for page, frame in svc.page_table.items():
            assert svc.frame_holds[frame] == page
            assert page in svc.fpga.resident
        assert sum(p is not None for p in svc.frame_holds) == len(svc.page_table)

    def test_fault_time_charged_as_reconfig(self, paged_setup, harness):
        reg, circ = paged_setup
        svc = PagedVfpgaService(reg, [circ], frame_width=3)
        h = harness(svc)
        t = Task("t", [FpgaOp("virt", 6)])
        h.run([t])
        assert t.accounting.fpga_reconfig_time > 0
        assert t.accounting.n_reconfigs == 6

    def test_virtual_larger_than_physical(self, arch, harness):
        """The headline: a 24-column virtual circuit runs on a 12-column
        device."""
        reg = ConfigRegistry(arch)
        circ = make_paged_circuit(
            reg, "huge", n_pages=8, page_width=3, pattern="sequential", seed=2
        )
        virtual_columns = 8 * 3
        assert virtual_columns > arch.width
        svc = PagedVfpgaService(reg, [circ], frame_width=3)
        h = harness(svc)
        stats = h.run([Task("t", [FpgaOp("huge", 16)])])
        assert stats.n_tasks == 1
        assert svc.metrics.exec_time > 0

    def test_two_circuits_share_frames(self, arch, harness):
        reg = ConfigRegistry(arch)
        c1 = make_paged_circuit(reg, "v1", 4, 3, pattern="sequential", seed=1)
        c2 = make_paged_circuit(reg, "v2", 4, 3, pattern="sequential", seed=2)
        svc = PagedVfpgaService(reg, [c1, c2], frame_width=3)
        h = harness(svc)
        stats = h.run([
            Task("t1", [FpgaOp("v1", 8)]),
            Task("t2", [FpgaOp("v2", 8)]),
        ])
        assert stats.n_tasks == 2
        # Frames were contended: total faults exceed one circuit's pages.
        assert svc.metrics.n_page_faults > 4
