"""Partitioning service tests: fixed tables, variable split/merge, GC."""

import pytest

from repro.core import (
    CapacityError,
    FixedPartitionService,
    VariablePartitionService,
)
from repro.osim import CpuBurst, DeadlockError, FpgaOp, Task

CP = 20e-9


class TestFixedPartitions:
    def test_partition_table_built(self, registry, harness):
        svc = FixedPartitionService(registry, [4, 4, 4])
        harness(svc)
        assert [p.rect.x for p in svc.partitions] == [0, 4, 8]
        assert all(p.rect.w == 4 for p in svc.partitions)

    def test_equal_helper(self, registry, harness):
        svc = FixedPartitionService.equal(registry, 3)
        harness(svc)
        assert len(svc.partitions) == 3

    def test_table_exceeding_device_rejected(self, registry):
        with pytest.raises(CapacityError):
            FixedPartitionService(registry, [8, 8])

    def test_parallel_execution_across_partitions(self, registry, harness):
        svc = FixedPartitionService(registry, [4, 4, 4])
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp(c, 500000)])
                 for i, c in enumerate(["a3", "b3", "c4"])]
        stats = h.run(tasks)
        # Downloads serialize on the configuration port, but the three
        # executions overlap: the makespan is well below load + 3x exec.
        exec_one = 500000 * CP
        assert stats.makespan < stats.total_fpga_reconfig + 2.2 * exec_one
        serial = stats.total_fpga_reconfig + 3 * exec_one
        assert stats.makespan < serial

    def test_affinity_prefers_own_partition(self, registry, harness):
        svc = FixedPartitionService(registry, [4, 4, 4])
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 100), CpuBurst(1e-4), FpgaOp("a3", 100)])
        h.run([t])
        assert svc.metrics.n_loads == 1
        assert svc.metrics.n_hits == 1

    def test_partition_reuse_reduces_loads(self, registry, harness):
        """Core §4 claim: with enough partitions the working set stays
        resident and downloads stop."""
        svc = FixedPartitionService(registry, [4, 4, 4])
        h = harness(svc)
        program = [FpgaOp(c, 100) for c in ["a3", "b3", "c4"] * 5]
        h.run([Task("t", program)])
        assert svc.metrics.n_loads == 3
        assert svc.metrics.n_hits == 12

    def test_too_wide_for_every_partition(self, registry, harness):
        svc = FixedPartitionService(registry, [4, 4, 4])
        h = harness(svc)
        with pytest.raises(CapacityError, match="fits no partition"):
            h.run([Task("t", [FpgaOp("d6", 10)])])

    def test_eviction_when_partitions_scarce(self, registry, harness):
        svc = FixedPartitionService(registry, [4])
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 10), FpgaOp("b3", 10), FpgaOp("a3", 10)])
        h.run([t])
        assert svc.metrics.n_loads == 3  # one partition: thrash
        assert svc.metrics.n_evictions == 2


class TestVariablePartitions:
    def test_split_on_demand(self, registry, harness):
        svc = VariablePartitionService(registry)
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp(c, 100000)])
                 for i, c in enumerate(["a3", "b3", "c4"])]
        h.run(tasks)
        # 3+3+4 = 10 of 12 columns allocated concurrently.
        assert svc.metrics.n_loads == 3
        assert len(svc.residents) == 3

    def test_caching_gives_hits(self, registry, harness):
        svc = VariablePartitionService(registry)
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 10), CpuBurst(1e-4), FpgaOp("a3", 10)])
        h.run([t])
        assert svc.metrics.n_hits == 1

    def test_eviction_when_full(self, registry, harness):
        svc = VariablePartitionService(registry, gc="merge")
        h = harness(svc)
        # a3+b3+c4 = 10 cols; d6 needs 6 -> evictions required.
        t = Task("t", [FpgaOp("a3", 10), FpgaOp("b3", 10), FpgaOp("c4", 10),
                       FpgaOp("d6", 10)])
        h.run([t])
        assert svc.metrics.n_evictions >= 1

    def test_gc_none_starves_on_fragmentation(self, registry, harness):
        """Paper §4: without GC a task can wait forever although the sum
        of the idle fragments would hold it."""
        svc = VariablePartitionService(registry, gc="none")
        h = harness(svc)
        # Fill with 3+3+4 (splits at 3,6,10), release all, then ask for 6:
        # free spans are 3,3,4(,2) — 12 total, none >= 6.
        t = Task("t", [FpgaOp("a3", 10), FpgaOp("b3", 10), FpgaOp("c4", 10),
                       FpgaOp("d6", 10)])
        with pytest.raises(DeadlockError):
            h.run([t])
        assert svc.starvation_events > 0
        assert svc.allocator.total_free >= 6
        assert svc.allocator.largest_free < 6

    def test_gc_merge_resolves_adjacent_fragments(self, registry, harness):
        svc = VariablePartitionService(registry, gc="merge")
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 10), FpgaOp("b3", 10), FpgaOp("c4", 10),
                       FpgaOp("d6", 10)])
        stats = h.run([t])  # merge of freed neighbours fits d6
        assert stats.n_tasks == 1

    def test_gc_compact_relocates_held_partition(self, registry, harness):
        """A *held* idle partition in the middle of the array cannot be
        evicted — only relocation (paper §4) lets a wide request in."""
        svc = VariablePartitionService(registry, gc="compact")
        h = harness(svc)
        # t_left caches a3 at columns 0-3 and exits.
        t_left = Task("t_left", [FpgaOp("a3", 10)])
        # t_mid acquires c4 at columns 3-7 and holds it (idle) through a
        # long CPU section before using it again.
        t_mid = Task(
            "t_mid",
            [FpgaOp("c4", 10), CpuBurst(0.2), FpgaOp("c4", 10)],
            arrival=1e-3,
        )
        # t_big then needs 6 contiguous columns: evicting a3 leaves
        # fragments (0,3)+(7,5) around held c4 — only moving c4 helps.
        t_big = Task("t_big", [FpgaOp("d6", 10)], arrival=2e-2)
        stats = h.run([t_left, t_mid, t_big])
        assert stats.n_tasks == 3
        assert svc.metrics.n_compactions >= 1
        assert svc.metrics.n_relocations >= 1
        # c4 survived the move and was reused without a reload.
        assert "c4" in svc.fpga.resident

    def test_relocation_preserves_residency(self, registry, harness):
        svc = VariablePartitionService(registry, gc="compact")
        h = harness(svc)
        t = Task("t", [FpgaOp("a3", 10), FpgaOp("b3", 10), FpgaOp("c4", 10),
                       FpgaOp("d6", 10), FpgaOp("a3", 10)])
        h.run([t])
        # After compaction, device residency matches the service tables.
        for name, res in svc.residents.items():
            assert name in svc.fpga.resident
            assert svc.fpga.resident[name].region.x == res.anchor_x

    def test_sequential_relocation_moves_state(self, registry, harness):
        svc = VariablePartitionService(registry, gc="compact")
        h = harness(svc)
        t = Task(
            "t",
            [FpgaOp("seq4", 10), FpgaOp("a3", 10), FpgaOp("b3", 10),
             FpgaOp("d6", 10)],
        )
        h.run([t])
        if svc.metrics.n_relocations and "seq4" not in svc.fpga.resident:
            pytest.skip("seq4 was evicted, not relocated, in this layout")
        if svc.metrics.n_relocations:
            assert svc.metrics.n_state_saves >= 0  # charged when seq moved

    def test_fit_policy_validation(self, registry):
        with pytest.raises(ValueError):
            VariablePartitionService(registry, gc="teleport")

    def test_starvation_counter_requires_sufficient_total(self, registry, harness):
        svc = VariablePartitionService(registry, gc="none")
        h = harness(svc)
        # Plenty of space: no starvation recorded.
        h.run([Task("t", [FpgaOp("a3", 10)])])
        assert svc.starvation_events == 0


class TestSharedFrames:
    def test_concurrent_residents_have_disjoint_regions(self, registry, harness):
        svc = VariablePartitionService(registry)
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp(c, 100000)])
                 for i, c in enumerate(["a3", "b3", "c4"])]
        h.run(tasks)
        regions = [b.region for b in svc.fpga.resident.values()]
        for i, r1 in enumerate(regions):
            for r2 in regions[i + 1:]:
                assert not r1.overlaps(r2)
