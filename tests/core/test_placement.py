"""Placement-engine tests: exact seed parity plus property invariants.

Every :class:`~repro.core.placement.PlacementStrategy` must obey the
engine contract — proposals in bounds, never overlapping a resident,
pure (deterministic on equal requests) — and the bottom-left strategy
must reproduce the seed ``RectAllocator`` heuristic anchor-for-anchor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PLACEMENT_STRATEGIES,
    BestFitPlacement,
    BottomLeftPlacement,
    ColumnBestFit,
    ColumnFirstFit,
    ColumnWorstFit,
    PlacementRequest,
    PlacementStrategy,
    RectAllocator,
    SkylinePlacement,
    make_placement,
)
from repro.core.errors import VfpgaError
from repro.device import Rect

BOUNDS_W, BOUNDS_H = 16, 12


def _resident_set(ops):
    """Build a valid (pairwise-disjoint, in-bounds) resident tuple by
    replaying alloc requests through a scratch allocator."""
    alloc = RectAllocator(BOUNDS_W, BOUNDS_H)
    for w, h in ops:
        alloc.allocate(w, h)
    return tuple(alloc.resident)


resident_sets = st.lists(
    st.tuples(st.integers(1, 7), st.integers(1, 6)), max_size=12,
).map(_resident_set)

requests = st.builds(
    PlacementRequest,
    w=st.integers(1, 8),
    h=st.integers(1, 8),
    bounds_w=st.just(BOUNDS_W),
    bounds_h=st.just(BOUNDS_H),
    resident=resident_sets,
)

ALL_STRATEGIES = sorted(PLACEMENT_STRATEGIES)


class TestFactory:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_known_names(self, name):
        strategy = make_placement(name)
        assert isinstance(strategy, PlacementStrategy)
        assert strategy.name == name

    def test_instance_passthrough(self):
        strategy = SkylinePlacement()
        assert make_placement(strategy) is strategy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("psychic")


class TestStrategyContract:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @given(req=requests)
    @settings(max_examples=60, deadline=None)
    def test_proposals_fit_and_are_deterministic(self, name, req):
        strategy = make_placement(name)
        proposal = strategy.propose(req)
        if proposal is not None:
            x, y = proposal.anchor
            rect = Rect(x, y, req.w, req.h)
            # In bounds ...
            assert 0 <= x and 0 <= y
            assert rect.x2 <= req.bounds_w and rect.y2 <= req.bounds_h
            # ... never overlapping a resident ...
            assert all(not rect.overlaps(r) for r in req.resident)
            assert proposal.candidates >= 1
        # ... and pure: the same request yields the same answer.
        assert strategy.propose(req) == proposal

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @given(req=requests)
    @settings(max_examples=40, deadline=None)
    def test_never_misses_when_bottom_left_fits(self, name, req):
        """Completeness floor: column strategies may be pickier than the
        geometric ones, but every strategy must succeed on an *empty*
        region whenever the request fits the bounds at all."""
        if req.resident:
            return
        proposal = make_placement(name).propose(req)
        assert (proposal is not None) == (
            req.w <= req.bounds_w and req.h <= req.bounds_h
        )

    def test_oversized_rejected(self):
        req = PlacementRequest(w=BOUNDS_W + 1, h=1,
                               bounds_w=BOUNDS_W, bounds_h=BOUNDS_H)
        for name in ALL_STRATEGIES:
            assert make_placement(name).propose(req) is None

    def test_degenerate_request_rejected(self):
        with pytest.raises(ValueError):
            PlacementRequest(w=0, h=1, bounds_w=4, bounds_h=4)


class TestSpanMode:
    """With explicit free_spans, strategies degenerate to span selection
    matching the seed fit="first"/"best"/"worst" rules exactly."""

    SPANS = ((0, 2), (4, 5), (10, 3))

    def _req(self, w):
        return PlacementRequest(w=w, h=1, bounds_w=16, bounds_h=1,
                                free_spans=self.SPANS)

    def test_first_fit_takes_leftmost(self):
        assert ColumnFirstFit().propose(self._req(2)).anchor == (0, 0)
        assert ColumnFirstFit().propose(self._req(3)).anchor == (4, 0)

    def test_best_fit_takes_tightest(self):
        assert ColumnBestFit().propose(self._req(2)).anchor == (0, 0)
        assert ColumnBestFit().propose(self._req(3)).anchor == (10, 0)

    def test_worst_fit_takes_largest(self):
        assert ColumnWorstFit().propose(self._req(2)).anchor == (4, 0)

    def test_no_span_fits(self):
        assert ColumnFirstFit().propose(self._req(6)) is None

    def test_candidates_counts_fitting_spans(self):
        assert ColumnFirstFit().propose(self._req(2)).candidates == 3
        assert ColumnFirstFit().propose(self._req(3)).candidates == 2

    def test_geometric_strategies_honor_spans(self):
        """Persistent split boundaries bind every strategy: a geometric
        heuristic must not invent a position outside the spans."""
        for name in ALL_STRATEGIES:
            proposal = make_placement(name).propose(self._req(3))
            assert proposal.anchor[0] in (4, 10)


class TestBottomLeft:
    def test_packs_origin_first(self):
        req = PlacementRequest(w=4, h=4, bounds_w=BOUNDS_W,
                               bounds_h=BOUNDS_H)
        assert BottomLeftPlacement().propose(req).anchor == (0, 0)

    def test_prefers_lowest_then_leftmost(self):
        resident = (Rect(0, 0, 4, 4),)
        req = PlacementRequest(w=4, h=4, bounds_w=BOUNDS_W,
                               bounds_h=BOUNDS_H, resident=resident)
        # Both (4, 0) and (0, 4) fit; lowest-then-leftmost wins.
        assert BottomLeftPlacement().propose(req).anchor == (4, 0)


class TestBestFit:
    def test_fills_tight_notch(self):
        # A 4-wide notch at the origin between a resident and the wall:
        # contact scoring must prefer it to open space further right.
        resident = (Rect(4, 0, 4, 12),)
        req = PlacementRequest(w=4, h=4, bounds_w=BOUNDS_W,
                               bounds_h=BOUNDS_H, resident=resident)
        assert BestFitPlacement().propose(req).anchor == (0, 0)


class TestSkyline:
    def test_levels_the_skyline(self):
        # Two towers of height 4 and 8: the 4-high window is lower.
        resident = (Rect(0, 0, 8, 4), Rect(8, 0, 8, 8))
        req = PlacementRequest(w=8, h=4, bounds_w=BOUNDS_W,
                               bounds_h=BOUNDS_H, resident=resident)
        assert SkylinePlacement().propose(req).anchor == (0, 4)


class TestRectAllocatorEngine:
    def test_default_reproduces_bottom_left(self):
        """The wrapper with its default strategy packs exactly like the
        seed heuristic: origin, then lowest-leftmost corners."""
        alloc = RectAllocator(12, 12)
        assert alloc.allocate(4, 4) == (0, 0)
        assert alloc.allocate(4, 4) == (4, 0)
        assert alloc.allocate(4, 4) == (8, 0)
        assert alloc.allocate(4, 4) == (0, 4)

    def test_per_call_override(self):
        alloc = RectAllocator(12, 12)
        alloc.allocate(4, 4)
        anchor = alloc.allocate(4, 4, placement=SkylinePlacement())
        assert anchor == (4, 0)
        assert alloc.last_proposal.anchor == anchor

    def test_bad_proposal_rejected(self):
        class Liar(PlacementStrategy):
            name = "liar"

            def _choose_anchor(self, req):
                from repro.core.placement import Proposal
                return Proposal(anchor=(0, 0))

        alloc = RectAllocator(8, 8, placement=Liar())
        alloc.allocate(4, 4)
        with pytest.raises(VfpgaError, match="liar"):
            alloc.allocate(4, 4)  # (0, 0) is occupied now

    @given(
        ops=st.lists(st.tuples(st.integers(1, 6), st.integers(1, 6)),
                     max_size=20),
        name=st.sampled_from(ALL_STRATEGIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_strategy_keeps_ledger_consistent(self, ops, name):
        """Whatever the strategy proposes, committed rectangles stay
        disjoint and the incremental grid matches the rebuild."""
        import numpy as np

        alloc = RectAllocator(BOUNDS_W, BOUNDS_H, placement=name)
        for w, h in ops:
            alloc.allocate(w, h)
        for i, a in enumerate(alloc.resident):
            for b in alloc.resident[i + 1:]:
                assert not a.overlaps(b)
        assert np.array_equal(alloc._occupancy(),
                              alloc._rebuild_occupancy())
