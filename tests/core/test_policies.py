"""Replacement-policy and access-trace tests."""

import pytest

from repro.core import access_trace, make_replacement
from repro.core.policies import (
    ClockReplacement,
    FifoReplacement,
    LruReplacement,
    MruReplacement,
    RandomReplacement,
)


class TestFactory:
    @pytest.mark.parametrize("name", ["fifo", "lru", "mru", "clock", "random"])
    def test_known_names(self, name):
        assert make_replacement(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_replacement("crystal-ball")


class TestFifo:
    def test_evicts_oldest_insert(self):
        p = FifoReplacement()
        for k in "abc":
            p.on_insert(k)
        p.on_access("a")  # FIFO ignores use
        assert p.victim(["a", "b", "c"]) == "a"

    def test_remove_forgets(self):
        p = FifoReplacement()
        p.on_insert("a")
        p.on_insert("b")
        p.on_remove("a")
        p.on_insert("a")
        assert p.victim(["a", "b"]) == "b"


class TestLru:
    def test_evicts_least_recent(self):
        p = LruReplacement()
        for k in "abc":
            p.on_insert(k)
        p.on_access("a")
        assert p.victim(["a", "b", "c"]) == "b"


class TestMru:
    def test_evicts_most_recent(self):
        p = MruReplacement()
        for k in "abc":
            p.on_insert(k)
        p.on_access("a")
        assert p.victim(["a", "b", "c"]) == "a"


class TestClock:
    def test_second_chance(self):
        p = ClockReplacement()
        for k in "abc":
            p.on_insert(k)
        # All referenced: the hand clears a's bit, then b's, then c's,
        # then evicts a (first unreferenced on second lap).
        assert p.victim(["a", "b", "c"]) == "a"

    def test_reference_saves(self):
        p = ClockReplacement()
        for k in "abc":
            p.on_insert(k)
        p.victim(["a", "b", "c"])  # clears bits, picks a
        p.on_access("b")
        assert p.victim(["b", "c"]) == "c"

    def test_remove_keeps_ring_consistent(self):
        p = ClockReplacement()
        for k in "abcd":
            p.on_insert(k)
        p.on_remove("b")
        assert p.victim(["a", "c", "d"]) in ("a", "c", "d")


class TestRandom:
    def test_seeded_deterministic(self):
        a = RandomReplacement(seed=7)
        b = RandomReplacement(seed=7)
        keys = list("abcdefg")
        assert [a.victim(keys) for _ in range(10)] == [
            b.victim(keys) for _ in range(10)
        ]

    def test_injected_rng_wins_over_seed(self):
        import random

        keys = list("abcdefg")
        shared = random.Random(123)
        injected = RandomReplacement(seed=999, rng=shared)
        reference = RandomReplacement(seed=123)
        assert injected._rng is shared
        assert [injected.victim(keys) for _ in range(10)] == [
            reference.victim(keys) for _ in range(10)
        ]

    def test_shared_rng_models_one_entropy_source(self):
        """Two services sharing one rng draw from a single stream: their
        interleaved picks equal one policy's consecutive picks."""
        import random

        keys = list("abcdefg")
        shared = random.Random(5)
        a = RandomReplacement(rng=shared)
        b = RandomReplacement(rng=shared)
        interleaved = [p.victim(keys) for p in (a, b, a, b)]
        solo = RandomReplacement(seed=5)
        assert interleaved == [solo.victim(keys) for _ in range(4)]

    def test_factory_forwards_seed(self):
        keys = list("abcdefg")
        a = make_replacement("random", seed=11)
        b = make_replacement("random", seed=11)
        c = make_replacement("random", seed=12)
        picks_a = [a.victim(keys) for _ in range(10)]
        assert picks_a == [b.victim(keys) for _ in range(10)]
        assert picks_a != [c.victim(keys) for _ in range(10)]

    def test_factory_forwards_rng(self):
        import random

        keys = list("abcdefg")
        shared = random.Random(31)
        policy = make_replacement("random", rng=shared)
        reference = RandomReplacement(seed=31)
        assert [policy.victim(keys) for _ in range(6)] == [
            reference.victim(keys) for _ in range(6)
        ]


class TestAccessTrace:
    def test_sequential_wraps(self):
        assert access_trace(3, 7, pattern="sequential") == [0, 1, 2, 0, 1, 2, 0]

    def test_looping_respects_working_set(self):
        t = access_trace(10, 9, pattern="looping", working_set=3)
        assert t == [0, 1, 2] * 3

    def test_random_in_range_and_seeded(self):
        t1 = access_trace(5, 50, pattern="random", seed=3)
        t2 = access_trace(5, 50, pattern="random", seed=3)
        assert t1 == t2
        assert all(0 <= i < 5 for i in t1)

    def test_zipf_skew(self):
        t = access_trace(8, 400, pattern="zipf", seed=1, zipf_s=1.5)
        assert t.count(0) > t.count(7) * 2

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            access_trace(3, 3, pattern="brownian")

    def test_validation(self):
        with pytest.raises(ValueError):
            access_trace(0, 3)

    def test_working_set_clamped(self):
        t = access_trace(3, 6, pattern="looping", working_set=99)
        assert max(t) == 2
