"""Preemption policy decision tests (paper §3 semantics)."""

import pytest

from repro.core import (
    Adaptive,
    ConfigRegistry,
    Rollback,
    RunToCompletion,
    SaveRestore,
    StateAccessError,
)
from repro.device import ConfigPort, get_family


@pytest.fixture
def arch():
    return get_family("VF8")


@pytest.fixture
def port(arch):
    return ConfigPort(arch)


@pytest.fixture
def entries(arch):
    reg = ConfigRegistry(arch)
    return {
        "comb": reg.register_synthetic("comb", 3, 3),
        "seq": reg.register_synthetic("seq", 3, 3, n_state_bits=9),
        "hidden": reg.register_synthetic(
            "hidden", 3, 3, n_state_bits=9, state_accessible=False
        ),
    }


class TestRunToCompletion:
    def test_never_allows(self, entries, port):
        policy = RunToCompletion()
        for e in entries.values():
            assert not policy.decide(e, port, 1.0).allowed


class TestRollback:
    def test_combinational_keeps_progress_free(self, entries, port):
        d = Rollback().decide(entries["comb"], port, 1.0)
        assert d.allowed and d.keep_progress
        assert d.save_cost == 0 and d.restore_cost == 0

    def test_sequential_discards_progress(self, entries, port):
        d = Rollback().decide(entries["seq"], port, 1.0)
        assert d.allowed and not d.keep_progress
        assert d.save_cost == 0

    def test_works_without_observability(self, entries, port):
        assert Rollback().decide(entries["hidden"], port, 1.0).allowed


class TestSaveRestore:
    def test_sequential_pays_state_movement(self, entries, port):
        d = SaveRestore().decide(entries["seq"], port, 1.0)
        assert d.allowed and d.keep_progress and d.used_state_access
        assert d.save_cost == pytest.approx(
            port.state_save_time(entries["seq"].bitstream).seconds
        )
        assert d.restore_cost == pytest.approx(
            port.state_restore_time(entries["seq"].bitstream).seconds
        )

    def test_combinational_is_free(self, entries, port):
        d = SaveRestore().decide(entries["comb"], port, 1.0)
        assert d.allowed and d.save_cost == 0

    def test_hidden_state_refuses_by_default(self, entries, port):
        d = SaveRestore().decide(entries["hidden"], port, 1.0)
        assert not d.allowed  # falls back to run-to-completion: always safe

    def test_hidden_state_strict_raises(self, entries, port):
        with pytest.raises(StateAccessError, match="unobservable"):
            SaveRestore(strict=True).decide(entries["hidden"], port, 1.0)


class TestAdaptive:
    def test_early_progress_prefers_rollback(self, entries, port):
        d = Adaptive().decide(entries["seq"], port, progress_done=1e-9)
        assert d.allowed and not d.keep_progress

    def test_late_progress_prefers_save(self, entries, port):
        d = Adaptive().decide(entries["seq"], port, progress_done=10.0)
        assert d.allowed and d.keep_progress
        assert d.save_cost > 0

    def test_crossover_at_state_movement_cost(self, entries, port):
        entry = entries["seq"]
        move = (
            port.state_save_time(entry.bitstream).seconds
            + port.state_restore_time(entry.bitstream).seconds
        )
        just_below = Adaptive().decide(entry, port, progress_done=move * 0.99)
        just_above = Adaptive().decide(entry, port, progress_done=move * 1.01)
        assert not just_below.keep_progress
        assert just_above.keep_progress

    def test_hidden_state_rolls_back(self, entries, port):
        d = Adaptive().decide(entries["hidden"], port, progress_done=10.0)
        assert d.allowed and not d.keep_progress


class TestCostModel:
    def test_state_cost_scales_with_footprint(self, arch, port):
        reg = ConfigRegistry(arch)
        small = reg.register_synthetic("s", 2, 2, n_state_bits=4)
        # 4 columns of FFs -> 4 frames to read back vs 2.
        large = reg.register_synthetic("l", 4, 4, n_state_bits=16)
        assert (
            port.state_save_time(large.bitstream).seconds
            > port.state_save_time(small.bitstream).seconds
        )
