"""2-D rectangular allocation and the rect-layout variable partitions."""

import pytest

from repro.core import VariablePartitionService, VfpgaError
from repro.core.rect_alloc import RectAllocator
from repro.osim import CpuBurst, FpgaOp, Task


class TestRectAllocator:
    def test_bottom_left_order(self):
        a = RectAllocator(8, 8)
        assert a.allocate(3, 3) == (0, 0)
        assert a.allocate(3, 3) == (3, 0)
        assert a.allocate(3, 3) == (0, 3)  # wraps up once the row is full

    def test_no_overlap_ever(self):
        import random

        rng = random.Random(3)
        a = RectAllocator(16, 16)
        placed = []
        for _ in range(200):
            if placed and rng.random() < 0.4:
                anchor, w, h = placed.pop(rng.randrange(len(placed)))
                a.release(anchor[0], anchor[1], w, h)
            else:
                w, h = rng.randint(1, 5), rng.randint(1, 5)
                anchor = a.allocate(w, h)
                if anchor is not None:
                    placed.append((anchor, w, h))
            rects = list(a.resident)
            for i, r1 in enumerate(rects):
                for r2 in rects[i + 1:]:
                    assert not r1.overlaps(r2)
            assert a.total_free == 256 - sum(r.area for r in rects)

    def test_largest_free_rect(self):
        a = RectAllocator(8, 8)
        assert a.largest_free_rect() == (8, 8)
        a.reserve(0, 0, 8, 4)
        assert a.largest_free_rect() == (8, 4)
        a.reserve(0, 4, 4, 4)
        assert a.largest_free_rect() == (4, 4)

    def test_fragmentation_gauge(self):
        a = RectAllocator(8, 8)
        assert a.fragmentation == 0.0
        # Checkerboard the middle to shatter free space.
        a.reserve(2, 2, 2, 2)
        a.reserve(5, 5, 2, 2)
        assert 0.0 < a.fragmentation < 1.0

    def test_release_validation(self):
        a = RectAllocator(4, 4)
        with pytest.raises(VfpgaError):
            a.release(0, 0, 2, 2)

    def test_reserve_conflict(self):
        a = RectAllocator(4, 4)
        a.reserve(0, 0, 3, 3)
        with pytest.raises(VfpgaError):
            a.reserve(1, 1, 2, 2)

    def test_can_fit_somewhere(self):
        a = RectAllocator(6, 6)
        a.reserve(0, 0, 6, 3)
        assert a.can_fit_somewhere(6, 3)
        assert not a.can_fit_somewhere(4, 4)


@pytest.fixture
def rect_registry(arch):
    """Square circuits that pack 2-D but waste full-height columns."""
    from repro.core import ConfigRegistry

    reg = ConfigRegistry(arch)  # VF12
    for i in range(6):
        reg.register_synthetic(f"sq{i}", 4, 4, critical_path=20e-9)
    return reg


class TestRectLayoutService:
    def test_layout_validation(self, rect_registry):
        with pytest.raises(ValueError):
            VariablePartitionService(rect_registry, layout="diagonal")

    def test_more_square_circuits_resident_than_columns(
        self, rect_registry, harness
    ):
        """Six 4x4 circuits on a 12x12 device: 2-D holds all nine slots
        worth, 1-D columns only three (each 4x4 claims 4 full columns)."""
        def run(layout):
            svc = VariablePartitionService(rect_registry, layout=layout,
                                           hold_mode="op")
            h = harness(svc)
            tasks = [Task(f"t{i}", [FpgaOp(f"sq{i}", 200_000)])
                     for i in range(6)]
            h.run(tasks)
            return svc

        rect_svc = run("rect")
        col_svc = run("columns")
        assert len(rect_svc.residents) == 6       # all cached side by side
        assert len(col_svc.residents) <= 3        # columns: only 3 fit
        assert rect_svc.metrics.n_evictions == 0
        assert col_svc.metrics.n_evictions >= 3

    def test_rect_compaction_relocates(self, rect_registry, harness):
        from repro.core import ConfigRegistry

        reg = rect_registry
        reg.register_synthetic("wide", 12, 8, critical_path=20e-9)
        svc = VariablePartitionService(reg, layout="rect", gc="compact")
        h = harness(svc)
        # Fill the bottom rows with squares; one stays held through a CPU
        # section; then the 12x8 request needs a compacted layout.
        holders = [Task(f"t{i}", [FpgaOp(f"sq{i}", 10)]) for i in range(3)]
        mid = Task("mid", [FpgaOp("sq3", 10), CpuBurst(0.1), FpgaOp("sq3", 10)],
                   arrival=1e-3)
        wide = Task("wide", [FpgaOp("wide", 10)], arrival=2e-2)
        stats = h.run(holders + [mid, wide])
        assert stats.n_tasks == 5

    def test_device_residency_matches_anchor_table(self, rect_registry, harness):
        svc = VariablePartitionService(rect_registry, layout="rect")
        h = harness(svc)
        tasks = [Task(f"t{i}", [FpgaOp(f"sq{i}", 1000)]) for i in range(4)]
        h.run(tasks)
        for name, res in svc.residents.items():
            bs = svc.fpga.resident[name]
            assert (bs.region.x, bs.region.y) == res.anchor
