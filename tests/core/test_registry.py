"""ConfigRegistry and synthetic bitstream tests."""

import pytest

from repro.core import (
    AdmissionError,
    ConfigRegistry,
    UnknownConfigError,
    synthetic_bitstream,
)
from repro.device import Fpga, get_family
from repro.netlist import parity_tree


@pytest.fixture
def arch():
    return get_family("VF8")


class TestSynthetic:
    def test_footprint_and_state(self, arch):
        bs = synthetic_bitstream("x", arch, 3, 4, n_state_bits=5)
        assert bs.region.w == 3 and bs.region.h == 4
        assert bs.n_state_bits == 5
        bs.validate(arch)

    def test_loads_on_device(self, arch):
        bs = synthetic_bitstream("x", arch, 2, 2, n_state_bits=2)
        fpga = Fpga(arch)
        timing = fpga.load("x", bs)
        assert timing.n_frames == 2
        # Readback must see the FFs.
        view_sim = fpga.functional_simulator()
        assert len(view_sim.read_state()) == 2

    def test_too_large_rejected(self, arch):
        with pytest.raises(AdmissionError):
            synthetic_bitstream("x", arch, 99, 2)

    def test_too_many_state_bits(self, arch):
        with pytest.raises(AdmissionError):
            synthetic_bitstream("x", arch, 2, 2, n_state_bits=5)


class TestRegistry:
    def test_register_and_lookup(self, arch):
        reg = ConfigRegistry(arch)
        entry = reg.register_synthetic("a", 2, 2, critical_path=10e-9)
        assert "a" in reg
        assert reg.get("a") is entry
        assert reg.names() == ["a"]

    def test_duplicate_rejected(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("a", 2, 2)
        with pytest.raises(AdmissionError):
            reg.register_synthetic("a", 2, 2)

    def test_unknown_raises(self, arch):
        with pytest.raises(UnknownConfigError):
            ConfigRegistry(arch).get("ghost")

    def test_compile_and_register(self, arch):
        reg = ConfigRegistry(arch)
        entry = reg.compile_and_register(parity_tree(4), seed=1, effort="greedy")
        assert entry.name == "parity4"
        assert entry.critical_path > 0
        assert entry.io_pins == 5
        assert not entry.is_sequential

    def test_dedicated_bitstream_rejected(self, arch):
        from repro.cad import compile_netlist
        from repro.core import ConfigEntry

        res = compile_netlist(parity_tree(4), arch, mode="dedicated", seed=1)
        reg = ConfigRegistry(arch)
        with pytest.raises(AdmissionError, match="relocatable"):
            reg.register(
                ConfigEntry("p", res.bitstream, res.critical_path, 5)
            )

    def test_total_area(self, arch):
        reg = ConfigRegistry(arch)
        reg.register_synthetic("a", 2, 3)
        reg.register_synthetic("b", 4, 2)
        assert reg.total_area() == 14
        assert reg.total_area(["a"]) == 6

    def test_entry_flags(self, arch):
        reg = ConfigRegistry(arch)
        seq = reg.register_synthetic("s", 2, 2, n_state_bits=3)
        comb = reg.register_synthetic("c", 2, 2)
        assert seq.is_sequential and not comb.is_sequential
        assert seq.region_shape == (2, 2)
