"""Scrubber / upset-injection tests (paper §5 diagnosis)."""

import pytest

from repro.core import ConfigRegistry, Scrubber, UpsetInjector
from repro.device import Fpga, get_family
from repro.sim import Simulator

ARCH = get_family("VF8")


def loaded_fpga():
    reg = ConfigRegistry(ARCH)
    e1 = reg.register_synthetic("a", 3, ARCH.height, n_state_bits=4)
    e2 = reg.register_synthetic("b", 3, ARCH.height)
    fpga = Fpga(ARCH)
    fpga.load("a", e1.bitstream.anchored_at(0, 0))
    fpga.load("b", e2.bitstream.anchored_at(3, 0))
    return fpga


class TestUpsetInjector:
    def test_injects_and_records(self):
        sim = Simulator()
        fpga = loaded_fpga()
        inj = UpsetInjector(sim, fpga, mean_interval=1e-3, seed=2,
                            stop_after=0.05)
        sim.run()
        assert len(inj.records) > 10
        assert any(r.handle in ("a", "b") for r in inj.records)

    def test_deterministic_per_seed(self):
        def record_times(seed):
            sim = Simulator()
            fpga = loaded_fpga()
            inj = UpsetInjector(sim, fpga, 1e-3, seed=seed, stop_after=0.02)
            sim.run()
            return [(r.time, r.frame, r.bit) for r in inj.records]

        assert record_times(7) == record_times(7)
        assert record_times(7) != record_times(8)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            UpsetInjector(sim, loaded_fpga(), mean_interval=0)


class TestScrubber:
    def test_repairs_resident_corruption(self):
        sim = Simulator()
        fpga = loaded_fpga()
        inj = UpsetInjector(sim, fpga, mean_interval=2e-3, seed=5,
                            stop_after=0.08)
        scrub = Scrubber(sim, fpga, period=5e-3, injector=inj,
                         stop_after=0.1)
        sim.run()
        # Repairs charge real port time (unload + golden reload), so
        # fewer passes fit in the window than when repairs were free.
        assert scrub.n_scrubs >= 5
        hits = [r for r in inj.records if r.handle is not None]
        assert hits, "expected some upsets to land on residents"
        assert scrub.n_repairs >= 1
        assert scrub.repair_time_total > 0
        # After the last scrub pass, everything repairable was repaired.
        assert fpga.scrub() == [] or sim.now < 0.1
        for r in hits:
            if r.repaired_at is not None:
                assert r.repaired_at >= r.time

    def test_faster_scrubbing_shortens_exposure(self):
        def mean_exposure(period):
            sim = Simulator()
            fpga = loaded_fpga()
            inj = UpsetInjector(sim, fpga, mean_interval=3e-3, seed=11,
                                stop_after=0.4)
            Scrubber(sim, fpga, period=period, injector=inj, stop_after=0.5)
            sim.run()
            exposures = [r.exposure for r in inj.records
                         if r.exposure is not None]
            return sum(exposures) / len(exposures) if exposures else None

        fast = mean_exposure(2e-3)
        slow = mean_exposure(40e-3)
        assert fast is not None and slow is not None
        assert fast < slow

    def test_scrub_cost_accumulates(self):
        sim = Simulator()
        fpga = loaded_fpga()
        scrub = Scrubber(sim, fpga, period=1e-3, stop_after=0.02)
        sim.run()
        assert scrub.scrub_time_total > 0
        assert scrub.scrub_time_total == pytest.approx(
            scrub.n_scrubs * fpga.scrub_time()
        )

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Scrubber(sim, loaded_fpga(), period=0)
