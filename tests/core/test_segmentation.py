"""Segmentation tests: netlist cutting and the demand-loading service."""

import pytest

from repro.core import (
    ConfigRegistry,
    SegmentedVfpgaService,
    UnknownConfigError,
    make_segmented_circuit,
    segment_netlist,
)
from repro.netlist import LogicSimulator, ripple_adder
from repro.osim import FpgaOp, Task


class TestSegmentNetlist:
    def test_segments_cover_all_cells(self):
        nl = ripple_adder(4)
        segments = segment_netlist(nl, 3)
        assert len(segments) == 3
        body = {
            c.name for c in nl.cells.values()
            if c.kind.value not in ("input", "output")
        }
        seg_cells = set()
        for seg in segments:
            seg_cells |= {
                c.name for c in seg.cells.values()
                if c.kind.value not in ("input", "output")
            }
        assert body <= seg_cells

    def test_segments_are_valid_netlists(self):
        for seg in segment_netlist(ripple_adder(4), 4):
            seg.validate()

    def test_segments_compose_functionally(self):
        """Evaluating the segments in order, feeding cut nets forward,
        reproduces the original circuit — self-contained sub-functions."""
        nl = ripple_adder(3)
        segments = segment_netlist(nl, 2)
        golden = LogicSimulator(nl)
        import random

        rng = random.Random(5)
        for _ in range(20):
            stim = {c.name: rng.randint(0, 1) for c in nl.primary_inputs}
            want = golden.evaluate(stim)
            values = dict(stim)
            got = {}
            for seg in segments:
                seg_sim = LogicSimulator(seg)
                seg_in = {
                    c.name: values[c.name] for c in seg.primary_inputs
                }
                out = seg_sim.evaluate(seg_in)
                for name, v in out.items():
                    if name.endswith("__cut_out"):
                        values[name[: -len("__cut_out")]] = v
                    else:
                        got[name] = v
                # Internal nets of the segment feed later segments too.
                for cell in seg.cells.values():
                    if cell.kind.value not in ("input", "output"):
                        seg_vals = seg_sim._settle(seg_in)
                        values[cell.name] = seg_vals[cell.name]
            assert {k: got[k] for k in want} == want

    def test_too_many_segments_rejected(self):
        with pytest.raises(ValueError):
            segment_netlist(ripple_adder(2), 99)

    def test_bad_count(self):
        with pytest.raises(ValueError):
            segment_netlist(ripple_adder(2), 0)


@pytest.fixture
def seg_setup(arch):
    reg = ConfigRegistry(arch)
    circ = make_segmented_circuit(
        reg, "virt", widths=[3, 4, 2, 3, 4], pattern="sequential", seed=1
    )
    return reg, circ


class TestSegmentedService:
    def test_variable_sizes_loaded_on_demand(self, seg_setup, harness):
        reg, circ = seg_setup
        svc = SegmentedVfpgaService(reg, [circ], replacement="lru")
        h = harness(svc)
        h.run([Task("t", [FpgaOp("virt", 5)])])
        assert svc.metrics.n_page_faults == 5  # all cold
        # Total virtual width 16 > physical 12: demand loading worked.
        assert sum(w for w in [3, 4, 2, 3, 4]) > 12

    def test_eviction_on_overflow(self, seg_setup, harness):
        reg, circ = seg_setup
        svc = SegmentedVfpgaService(reg, [circ], replacement="lru")
        h = harness(svc)
        h.run([Task("t", [FpgaOp("virt", 10)])])
        assert svc.metrics.n_evictions >= 1

    def test_working_set_stays_resident(self, arch, harness):
        reg = ConfigRegistry(arch)
        circ = make_segmented_circuit(
            reg, "virt", widths=[3, 3, 3], pattern="looping",
            working_set=3, seed=2,
        )
        svc = SegmentedVfpgaService(reg, [circ], replacement="lru")
        h = harness(svc)
        h.run([Task("t", [FpgaOp("virt", 30)])])
        assert svc.metrics.n_page_faults == 3  # cold only

    def test_segment_table_consistent(self, seg_setup, harness):
        reg, circ = seg_setup
        svc = SegmentedVfpgaService(reg, [circ])
        h = harness(svc)
        h.run([Task("t", [FpgaOp("virt", 7)])])
        for seg, x in svc.segment_table.items():
            assert seg in svc.fpga.resident
            assert svc.fpga.resident[seg].region.x == x

    def test_unknown_circuit(self, seg_setup, harness):
        reg, circ = seg_setup
        svc = SegmentedVfpgaService(reg, [circ])
        h = harness(svc)
        with pytest.raises(UnknownConfigError):
            h.run([Task("t", [FpgaOp("ghost", 1)], configs=["ghost"])])

    def test_real_compiled_segments(self, arch, harness):
        """End-to-end: cut a real netlist, compile every segment, and run
        the segmented circuit on the service."""
        from repro.core import SegmentedCircuit

        reg = ConfigRegistry(arch)
        names = []
        for seg in segment_netlist(ripple_adder(4), 3):
            entry = reg.compile_and_register(seg, seed=1, effort="greedy")
            names.append(entry.name)
        circ = SegmentedCircuit(
            name="adder_seg", segment_names=tuple(names),
            pattern="sequential", seed=1,
        )
        svc = SegmentedVfpgaService(reg, [circ], cycles_per_access=100)
        h = harness(svc)
        stats = h.run([Task("t", [FpgaOp("adder_seg", 6)])])
        assert stats.n_tasks == 1
        assert svc.metrics.n_page_faults >= 3
