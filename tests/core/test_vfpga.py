"""VirtualFpga facade tests: interactive use + managed simulation."""

import pytest

from repro.core import VirtualFpga, make_preemption_policy, make_service
from repro.core.preemption import SaveRestore
from repro.netlist import LogicSimulator, counter, parity_tree, ripple_adder
from repro.osim import FpgaOp, Task, uniform_workload


@pytest.fixture(scope="module")
def vf():
    v = VirtualFpga("VF10")
    v.add_circuit(ripple_adder(3), effort="greedy", seed=1)
    v.add_circuit(counter(3), effort="greedy", seed=1)
    v.add_circuit(parity_tree(4), effort="greedy", seed=1)
    return v


class TestInteractive:
    def test_adder_computes(self, vf):
        out = vf.evaluate("adder3", {
            **LogicSimulator.pack_bus("a", 5, 3),
            **LogicSimulator.pack_bus("b", 2, 3),
            "cin": 0,
        })
        value = LogicSimulator.unpack_bus(out, "s") | (out["cout"] << 3)
        assert value == 7

    def test_counter_steps_and_state(self, vf):
        vf.write_state("counter3", {f"q{i}_ff": 0 for i in range(3)})
        vf.step("counter3", {"en": 1})
        out = vf.step("counter3", {"en": 1})
        assert LogicSimulator.unpack_bus(out, "q") == 1
        snap = vf.read_state("counter3")
        assert set(snap) == {f"q{i}_ff" for i in range(3)}

    def test_switching_circuits_counts_loads(self, vf):
        before = vf.interactive_loads
        vf.evaluate("parity4", LogicSimulator.pack_bus("d", 0b1011, 4))
        vf.evaluate("adder3", {
            **LogicSimulator.pack_bus("a", 1, 3),
            **LogicSimulator.pack_bus("b", 1, 3),
            "cin": 0,
        })
        assert vf.interactive_loads >= before + 2
        assert vf.interactive_load_time > 0

    def test_repeat_use_no_reload(self, vf):
        vf.evaluate("parity4", LogicSimulator.pack_bus("d", 1, 4))
        before = vf.interactive_loads
        vf.evaluate("parity4", LogicSimulator.pack_bus("d", 2, 4))
        assert vf.interactive_loads == before

    def test_parity_correct(self, vf):
        for v in (0b0000, 0b1000, 0b1110, 0b1111):
            out = vf.evaluate("parity4", LogicSimulator.pack_bus("d", v, 4))
            assert out["p"] == bin(v).count("1") % 2


class TestSimulate:
    def test_runs_and_returns_stats(self, vf):
        tasks = uniform_workload(vf.circuits, 3, 2, 1e-3, 1000, seed=1)
        stats = vf.simulate(tasks, policy="dynamic")
        assert stats.n_tasks == 3
        assert vf.last_service.metrics.n_ops == 6
        assert vf.last_kernel.trace.count("done") == 3

    def test_policies_by_name(self, vf):
        for policy, kw in [
            ("nonpreemptable", {}),
            ("dynamic", {"preemption": "save-restore", "fpga_time_slice": 1e-3}),
            ("variable", {"gc": "merge"}),
        ]:
            tasks = [Task("t", [FpgaOp("adder3", 100)])]
            stats = vf.simulate(tasks, policy=policy, **kw)
            assert stats.n_tasks == 1

    def test_unknown_policy(self, vf):
        with pytest.raises(ValueError, match="unknown policy"):
            vf.simulate([Task("t", [])], policy="hyperdrive")


class TestFactories:
    def test_make_preemption_policy_names(self):
        assert make_preemption_policy("rollback").name == "rollback"
        sr = SaveRestore()
        assert make_preemption_policy(sr) is sr
        with pytest.raises(ValueError):
            make_preemption_policy("telepathy")

    def test_make_service_rejects_unknown(self, vf):
        with pytest.raises(ValueError):
            make_service("quantum", vf.registry)
