"""Bitstream validation, relocation and frame accounting tests."""

import pytest

from repro.device import (
    Architecture,
    Bitstream,
    BitstreamError,
    ClbConfig,
    Coord,
    IobConfig,
    IobDirection,
    Rect,
    Wire,
    iob_sites,
)


@pytest.fixture
def arch():
    return Architecture("t", 6, 6, k=4, channel_width=4)


def small_reloc(arch, at=(0, 0)) -> Bitstream:
    """A one-CLB inverter in a 2x2 region anchored at ``at``."""
    x, y = at
    clb = ClbConfig(
        lut_truth=0x5555,          # NOT of pin 0
        input_sel=(1, 0, 0, 0),    # pin 0 <- below channel track 0
        out_drives=frozenset({2}),  # drive below channel track 2
    )
    return Bitstream(
        name="inv",
        arch_name=arch.name,
        region=Rect(x, y, 2, 2),
        clbs={Coord(x, y): clb},
        switches={},
        relocatable=True,
        virtual_inputs={"a": Wire("H", x, y, 0)},
        virtual_outputs={"y": Wire("H", x, y, 2)},
    )


class TestValidation:
    def test_valid_bitstream_passes(self, arch):
        small_reloc(arch).validate(arch)

    def test_wrong_family_rejected(self, arch):
        bs = small_reloc(arch)
        other = Architecture("other", 6, 6, k=4, channel_width=4)
        with pytest.raises(BitstreamError, match="targets"):
            bs.validate(other)

    def test_region_outside_device(self, arch):
        bs = small_reloc(arch, at=(5, 5))
        with pytest.raises(BitstreamError, match="outside"):
            bs.validate(arch)

    def test_clb_outside_region(self, arch):
        bs = small_reloc(arch)
        bad = Bitstream(
            name=bs.name, arch_name=bs.arch_name, region=bs.region,
            clbs={Coord(5, 5): ClbConfig(lut_truth=1, input_sel=(0,) * 4)},
            relocatable=True,
        )
        with pytest.raises(BitstreamError, match="outside region"):
            bad.validate(arch)

    def test_relocatable_cannot_bind_iobs(self, arch):
        site = iob_sites(arch)[0]
        bad = Bitstream(
            name="x", arch_name=arch.name, region=Rect(0, 0, 2, 2),
            relocatable=True,
            iobs={site: IobConfig(True, IobDirection.INPUT, 1)},
        )
        with pytest.raises(BitstreamError, match="IOB"):
            bad.validate(arch)

    def test_virtual_pin_must_be_owned(self, arch):
        bs = small_reloc(arch)
        bad = Bitstream(
            name=bs.name, arch_name=bs.arch_name, region=bs.region,
            clbs=bs.clbs, relocatable=True,
            virtual_inputs={"a": Wire("H", 4, 4, 0)},
        )
        with pytest.raises(BitstreamError, match="unowned"):
            bad.validate(arch)

    def test_state_bit_must_point_at_ff(self, arch):
        bs = small_reloc(arch)
        bad = Bitstream(
            name=bs.name, arch_name=bs.arch_name, region=bs.region,
            clbs=bs.clbs, relocatable=True,
            state_bits={"q": Coord(0, 0)},  # that CLB has no FF
        )
        with pytest.raises(BitstreamError, match="non-FF"):
            bad.validate(arch)


class TestFrames:
    def test_frames_touched_are_region_columns(self, arch):
        bs = small_reloc(arch, at=(2, 1))
        assert bs.frames_touched(arch) == {2, 3}  # the whole 2-column region

    def test_dedicated_touches_iob_frame(self, arch):
        site = iob_sites(arch)[0]
        bs = Bitstream(
            name="d", arch_name=arch.name, region=arch.full_rect,
            iobs={site: IobConfig(True, IobDirection.INPUT, 1)},
        )
        assert arch.width in bs.frames_touched(arch)

    def test_state_frames(self, arch):
        clb = ClbConfig(
            lut_truth=0x5555, ff_enable=True, out_registered=True,
            input_sel=(1, 0, 0, 0), out_drives=frozenset({0}),
        )
        bs = Bitstream(
            name="ff", arch_name=arch.name, region=Rect(3, 3, 1, 1),
            clbs={Coord(3, 3): clb}, relocatable=True,
            state_bits={"q": Coord(3, 3)},
        )
        assert bs.state_frames(arch) == {3}


class TestRelocation:
    def test_translate_moves_everything(self, arch):
        bs = small_reloc(arch)
        moved = bs.translated(3, 2)
        moved.validate(arch)
        assert moved.region == Rect(3, 2, 2, 2)
        assert Coord(3, 2) in moved.clbs
        assert moved.virtual_inputs["a"] == Wire("H", 3, 2, 0)

    def test_translate_zero_is_identity(self, arch):
        bs = small_reloc(arch)
        assert bs.translated(0, 0) is bs

    def test_anchor_at(self, arch):
        bs = small_reloc(arch, at=(2, 2))
        assert bs.anchored_at(0, 0).region == Rect(0, 0, 2, 2)

    def test_nonrelocatable_rejects_translate(self, arch):
        bs = Bitstream(name="d", arch_name=arch.name, region=arch.full_rect)
        with pytest.raises(BitstreamError, match="not relocatable"):
            bs.translated(1, 0)

    def test_translate_out_of_device_fails_validation(self, arch):
        moved = small_reloc(arch).translated(5, 0)
        with pytest.raises(BitstreamError):
            moved.validate(arch)


class TestIntrospection:
    def test_used_clbs(self, arch):
        assert small_reloc(arch).used_clbs == 1

    def test_ports(self, arch):
        ins, outs = small_reloc(arch).ports()
        assert ins == ["a"] and outs == ["y"]

    def test_str(self, arch):
        assert "relocatable" in str(small_reloc(arch))
