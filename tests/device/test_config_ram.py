"""Codec round-trip and ConfigRam tests."""

import numpy as np
import pytest

from repro.device import (
    Architecture,
    ClbConfig,
    ConfigRam,
    Coord,
    FrameCodec,
    IobConfig,
    IobDirection,
    iob_sites,
)


@pytest.fixture
def arch():
    return Architecture("t", 4, 4, k=4, channel_width=4)


@pytest.fixture
def codec(arch):
    return FrameCodec(arch)


class TestClbCodec:
    def test_roundtrip(self, codec):
        cfg = ClbConfig(
            lut_truth=0xBEEF,
            ff_enable=True,
            ff_init=1,
            out_registered=True,
            input_sel=(1, 0, 7, 16),
            out_drives=frozenset({0, 5, 15}),
        )
        assert codec.decode_clb(codec.encode_clb(cfg)) == cfg

    def test_empty_roundtrip(self, arch, codec):
        cfg = ClbConfig.empty(arch)
        bits = codec.encode_clb(cfg)
        assert not bits.any()
        assert codec.decode_clb(bits) == cfg

    def test_invalid_selector_rejected(self, arch, codec):
        cfg = ClbConfig(input_sel=(99, 0, 0, 0))
        with pytest.raises(ValueError):
            codec.encode_clb(cfg)

    def test_registered_without_ff_rejected(self, arch, codec):
        cfg = ClbConfig(out_registered=True, input_sel=(0,) * 4)
        with pytest.raises(ValueError):
            codec.encode_clb(cfg)


class TestSwitchCodec:
    def test_roundtrip(self, codec):
        enabled = frozenset({(0, 0), (2, 5), (3, 3)})
        assert codec.decode_switchbox(codec.encode_switchbox(enabled)) == enabled

    def test_long_line_keys_roundtrip(self, codec):
        enabled = frozenset({(0, 6), (1, 7), (2, 3)})
        assert codec.decode_switchbox(codec.encode_switchbox(enabled)) == enabled

    def test_bad_key_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode_switchbox(frozenset({(0, 8)}))
        with pytest.raises(ValueError):
            codec.encode_switchbox(frozenset({(99, 0)}))
        with pytest.raises(ValueError):
            # long index beyond long_per_channel (default 2)
            codec.encode_switchbox(frozenset({(3, 6)}))


class TestIobCodec:
    def test_roundtrip(self, codec):
        cfg = IobConfig(enable=True, direction=IobDirection.OUTPUT, track_sel=3)
        assert codec.decode_iob(codec.encode_iob(cfg)) == cfg

    def test_enabled_needs_track(self, codec):
        with pytest.raises(ValueError):
            codec.encode_iob(IobConfig(enable=True, track_sel=0))


class TestDeviceRoundtrip:
    def test_build_and_decode_frames(self, arch, codec):
        clbs = {
            Coord(1, 2): ClbConfig(
                lut_truth=0x8, input_sel=(1, 2, 0, 0), out_drives=frozenset({3})
            ),
            Coord(3, 0): ClbConfig(
                lut_truth=0x1,
                ff_enable=True,
                out_registered=True,
                input_sel=(0,) * 4,
                out_drives=frozenset({0}),
            ),
        }
        switches = {Coord(1, 1): frozenset({(0, 0), (1, 5)}),
                    Coord(4, 2): frozenset({(2, 5)})}
        sites = iob_sites(arch)
        iobs = {sites[0]: IobConfig(True, IobDirection.INPUT, 2),
                sites[-1]: IobConfig(True, IobDirection.OUTPUT, 4)}
        frames = codec.build_frames(clbs, switches, iobs)
        assert frames.shape == (arch.n_frames, arch.frame_bits)
        d_clbs, d_switches, d_iobs = codec.decode_frames(frames)
        assert d_clbs == clbs
        assert d_switches == switches
        assert d_iobs == iobs

    def test_out_of_device_rejected(self, arch, codec):
        with pytest.raises(ValueError):
            codec.build_frames(
                {Coord(9, 9): ClbConfig(lut_truth=1, input_sel=(0,) * 4)}, {}, {}
            )
        with pytest.raises(ValueError):
            codec.build_frames({}, {Coord(9, 0): frozenset({(0, 0)})}, {})

    def test_decode_skips_untouched_tiles(self, arch, codec):
        frames = codec.build_frames({}, {}, {})
        clbs, switches, iobs = codec.decode_frames(frames)
        assert clbs == {} and switches == {} and iobs == {}


class TestConfigRam:
    def test_initial_zero(self, arch):
        ram = ConfigRam(arch)
        assert not ram.frames.any()

    def test_write_read_frame(self, arch):
        ram = ConfigRam(arch)
        bits = np.ones(arch.frame_bits, dtype=np.uint8)
        ram.write_frame(2, bits)
        assert ram.read_frame(2).all()
        assert not ram.read_frame(0).any()

    def test_counters(self, arch):
        ram = ConfigRam(arch)
        ram.write_frame(0, np.zeros(arch.frame_bits, dtype=np.uint8))
        ram.write_frame(1, np.zeros(arch.frame_bits, dtype=np.uint8))
        assert ram.frame_writes == 2
        assert ram.bits_written == 2 * arch.frame_bits

    def test_bounds(self, arch):
        ram = ConfigRam(arch)
        with pytest.raises(IndexError):
            ram.write_frame(99, np.zeros(arch.frame_bits, dtype=np.uint8))
        with pytest.raises(ValueError):
            ram.write_frame(0, np.zeros(3, dtype=np.uint8))

    def test_read_returns_copy(self, arch):
        ram = ConfigRam(arch)
        frame = ram.read_frame(0)
        frame[:] = 1
        assert not ram.frames[0].any()
