"""Unit tests for architecture parameters and the family catalog."""

import math

import pytest

from repro.device import FAMILIES, Architecture, get_family


class TestValidation:
    def test_tiny_array_rejected(self):
        with pytest.raises(ValueError):
            Architecture("bad", 1, 4)

    def test_k_range(self):
        with pytest.raises(ValueError):
            Architecture("bad", 4, 4, k=1)
        with pytest.raises(ValueError):
            Architecture("bad", 4, 4, k=7)

    def test_channel_width(self):
        with pytest.raises(ValueError):
            Architecture("bad", 4, 4, channel_width=1)


class TestDerived:
    def test_counts(self):
        a = Architecture("t", 4, 6, io_per_edge=2)
        assert a.n_clbs == 24
        assert a.n_pins == 2 * (2 * 4 + 2 * 6)
        assert a.full_rect.area == 24

    def test_sel_bits(self):
        a = Architecture("t", 4, 4, channel_width=8)
        # 4*8 = 32 candidates + open = 33 values -> 6 bits
        assert a.input_sel_bits == 6
        assert a.iob_sel_bits == math.ceil(math.log2(9))

    def test_clb_config_bits(self):
        a = Architecture("t", 4, 4, k=4, channel_width=8)
        assert a.clb_config_bits == 16 + 3 + 4 * 6 + 32

    def test_frame_accounting(self):
        a = Architecture("t", 4, 4)
        assert a.n_frames == 5
        assert a.total_config_bits == a.n_frames * a.frame_bits
        # CLB frame must fit its column + switch column
        assert a.frame_bits >= a.clb_column_bits + a.switchbox_column_bits
        assert a.frame_bits >= a.switchbox_column_bits + a.iob_total_bits

    def test_full_config_time_near_paper_figure(self):
        """Paper §2: XC4000-class full serial download <= 200 ms.  The
        largest catalog device must land in that era (tens to ~200 ms)."""
        big = get_family("VF32")
        assert 0.02 <= big.full_config_time <= 0.25

    def test_config_time_scales_with_area(self):
        assert get_family("VF32").full_config_time > get_family("VF8").full_config_time

    def test_scaled_override(self):
        a = get_family("VF8").scaled(serial_rate=2e6)
        assert a.serial_rate == 2e6
        assert a.width == 8


class TestCatalog:
    def test_monotone_sizes(self):
        sizes = [f.n_clbs for f in FAMILIES.values()]
        assert sizes == sorted(sizes)

    def test_get_family_error(self):
        with pytest.raises(KeyError, match="unknown family"):
            get_family("XC9999")

    def test_gate_counts_span_paper_range(self):
        gates = [f.equivalent_gates for f in FAMILIES.values()]
        assert min(gates) < 1000
        assert max(gates) > 20000
