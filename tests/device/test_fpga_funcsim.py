"""Device + functional-simulator integration with hand-built bitstreams.

These tests assemble configurations by hand (no CAD flow) and check that
the device interprets its own configuration bits correctly, enforces
electrical legality, and supports relocation and partition isolation.
"""

import pytest

from repro.device import (
    Architecture,
    Bitstream,
    BitstreamError,
    ClbConfig,
    ConfigurationError,
    Coord,
    Fpga,
    Rect,
    Wire,
)


@pytest.fixture
def arch():
    return Architecture("t", 6, 6, k=4, channel_width=4)


@pytest.fixture
def fpga(arch):
    return Fpga(arch)


def inverter(arch, at=(0, 0), name="inv") -> Bitstream:
    x, y = at
    clb = ClbConfig(
        lut_truth=0x5555,
        input_sel=(1, 0, 0, 0),
        out_drives=frozenset({2}),
    )
    return Bitstream(
        name=name, arch_name=arch.name, region=Rect(x, y, 2, 2),
        clbs={Coord(x, y): clb}, relocatable=True,
        virtual_inputs={"a": Wire("H", x, y, 0)},
        virtual_outputs={"y": Wire("H", x, y, 2)},
    )


def toggle(arch, at=(0, 0), name="tog") -> Bitstream:
    """Self-looping registered inverter: q' = not q."""
    x, y = at
    clb = ClbConfig(
        lut_truth=0x5555,           # LUT = NOT pin0
        ff_enable=True,
        out_registered=True,
        input_sel=(1, 0, 0, 0),     # pin0 <- below track 0 (its own output)
        out_drives=frozenset({0}),  # drive below track 0
    )
    return Bitstream(
        name=name, arch_name=arch.name, region=Rect(x, y, 1, 1),
        clbs={Coord(x, y): clb}, relocatable=True,
        state_bits={"q": Coord(x, y)},
        virtual_outputs={"q": Wire("H", x, y, 0)},
    )


class TestLoadUnload:
    def test_load_writes_only_touched_frames(self, arch, fpga):
        bs = inverter(arch, at=(2, 2))
        timing = fpga.load("t1", bs)
        assert timing.mode == "partial"
        assert timing.n_frames == 2
        # Frames 2,3 non-zero; others untouched.
        assert fpga.ram.frames[2].any() or fpga.ram.frames[3].any()
        assert not fpga.ram.frames[0].any()

    def test_overlap_rejected(self, arch, fpga):
        fpga.load("t1", inverter(arch, at=(0, 0)))
        with pytest.raises(BitstreamError, match="overlaps"):
            fpga.load("t2", inverter(arch, at=(1, 1), name="other"))

    def test_adjacent_regions_allowed(self, arch, fpga):
        fpga.load("t1", inverter(arch, at=(0, 0)))
        fpga.load("t2", inverter(arch, at=(2, 0), name="other"))
        assert len(fpga.resident) == 2

    def test_duplicate_handle_rejected(self, arch, fpga):
        fpga.load("t1", inverter(arch))
        with pytest.raises(BitstreamError, match="already resident"):
            fpga.load("t1", inverter(arch, at=(3, 3)))

    def test_unload_clears_bits(self, arch, fpga):
        fpga.load("t1", inverter(arch, at=(1, 1)))
        fpga.unload("t1")
        assert not fpga.ram.frames.any()
        assert fpga.resident == {}

    def test_unload_unknown_handle(self, fpga):
        with pytest.raises(BitstreamError, match="not resident"):
            fpga.unload("ghost")

    def test_unload_preserves_neighbours_in_shared_frames(self, arch, fpga):
        # Two regions stacked vertically share CLB-column frames.
        a = inverter(arch, at=(0, 0), name="a")
        b = inverter(arch, at=(0, 2), name="b")
        fpga.load("a", a)
        snapshot = fpga.ram.frames.copy()
        fpga.load("b", b)
        fpga.unload("b")
        assert (fpga.ram.frames == snapshot).all()

    def test_free_area(self, arch, fpga):
        assert fpga.free_area() == 36
        fpga.load("t1", inverter(arch))
        assert fpga.free_area() == 32

    def test_counters_and_busy_time(self, arch, fpga):
        fpga.load("t1", inverter(arch))
        fpga.unload("t1")
        assert fpga.n_loads == 1 and fpga.n_unloads == 1
        assert fpga.port_busy_time > 0

    def test_clear(self, arch, fpga):
        fpga.load("t1", inverter(arch))
        timing = fpga.clear()
        assert timing.mode == "full-serial"
        assert fpga.resident == {}


class TestFunctionalSim:
    def test_inverter_truth(self, arch, fpga):
        fpga.load("t1", inverter(arch, at=(2, 2)))
        view = fpga.view("t1")
        assert view.evaluate({"a": 0}) == {"y": 1}
        assert view.evaluate({"a": 1}) == {"y": 0}

    def test_missing_stimulus_raises(self, arch, fpga):
        fpga.load("t1", inverter(arch))
        with pytest.raises(KeyError, match="'a'"):
            fpga.view("t1").evaluate({})

    def test_relocated_inverter_identical(self, arch, fpga):
        base = inverter(arch)
        fpga.load("t1", base.translated(3, 3))
        view = fpga.view("t1")
        assert view.evaluate({"a": 1}) == {"y": 0}

    def test_toggle_sequence(self, arch, fpga):
        fpga.load("t1", toggle(arch, at=(1, 1)))
        view = fpga.view("t1")
        outs = [view.step({})["q"] for _ in range(4)]
        assert outs == [0, 1, 0, 1]

    def test_state_save_restore(self, arch, fpga):
        fpga.load("t1", toggle(arch))
        view = fpga.view("t1")
        view.step({})
        snap = view.read_state()
        assert snap == {"q": 1}
        view.step({})
        view.write_state(snap)
        assert view.read_state() == {"q": 1}

    def test_two_circuits_isolated(self, arch, fpga):
        fpga.load("a", inverter(arch, at=(0, 0), name="a"))
        fpga.load("b", inverter(arch, at=(0, 2), name="b"))
        va = fpga.view("a")
        assert va.evaluate({"a": 1}) == {"y": 0}
        vb = fpga.view("b")
        assert vb.evaluate({"a": 0}) == {"y": 1}

    def test_view_of_nonresident_rejected(self, fpga):
        with pytest.raises(BitstreamError):
            fpga.view("ghost")


class TestElectricalLegality:
    def test_double_driver_detected(self, arch, fpga):
        """Two CLBs shorting one wire — e.g. partition interference — must
        be caught when the configuration is interpreted."""
        clb = ClbConfig(
            lut_truth=0xFFFF, input_sel=(0,) * 4, out_drives=frozenset({0})
        )
        bs = Bitstream(
            name="short", arch_name=arch.name, region=Rect(0, 0, 2, 1),
            clbs={
                Coord(0, 0): clb,
                # CLB (1,0) drives its own below-track-0 = H(1,0,0); CLB
                # (0,0) also reaches H(1,0,0)?  No — use a switch to short.
                Coord(1, 0): clb,
            },
            switches={Coord(1, 0): frozenset({(0, 0)})},  # H(0,0,0)<->H(1,0,0)
            relocatable=True,
        )
        fpga.load("t1", bs)
        with pytest.raises(ConfigurationError, match="drivers"):
            fpga.functional_simulator()

    def test_switch_off_edge_detected(self, arch, fpga):
        bs = Bitstream(
            name="edge", arch_name=arch.name, region=Rect(0, 0, 1, 1),
            switches={Coord(0, 0): frozenset({(0, 0)})},  # H-left missing at x=0
            relocatable=True,
        )
        fpga.load("t1", bs)
        with pytest.raises(ConfigurationError, match="edge"):
            fpga.functional_simulator()

    def test_combinational_loop_detected(self, arch, fpga):
        clb = ClbConfig(
            lut_truth=0x5555,           # NOT pin0 — unregistered self-loop
            input_sel=(1, 0, 0, 0),
            out_drives=frozenset({0}),
        )
        bs = Bitstream(
            name="loop", arch_name=arch.name, region=Rect(0, 0, 1, 1),
            clbs={Coord(0, 0): clb}, relocatable=True,
        )
        fpga.load("t1", bs)
        with pytest.raises(ConfigurationError, match="loop"):
            fpga.functional_simulator()
