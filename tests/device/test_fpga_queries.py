"""Odds-and-ends device queries and kernel edge cases."""

import pytest

from repro.core import ConfigRegistry
from repro.device import Coord, Fpga, Rect, get_family

ARCH = get_family("VF8")


@pytest.fixture
def fpga_with_two():
    reg = ConfigRegistry(ARCH)
    a = reg.register_synthetic("a", 3, 4)
    b = reg.register_synthetic("b", 2, 2)
    fpga = Fpga(ARCH)
    fpga.load("a", a.bitstream.anchored_at(0, 0))
    fpga.load("b", b.bitstream.anchored_at(5, 5))
    return fpga


class TestResidencyQueries:
    def test_find_handle_at(self, fpga_with_two):
        fpga = fpga_with_two
        assert fpga.find_handle_at(Coord(1, 1)) == "a"
        assert fpga.find_handle_at(Coord(5, 5)) == "b"
        assert fpga.find_handle_at(Coord(7, 0)) is None

    def test_region_is_free(self, fpga_with_two):
        fpga = fpga_with_two
        assert not fpga.region_is_free(Rect(0, 0, 1, 1))
        assert fpga.region_is_free(Rect(3, 0, 2, 2))

    def test_free_area_accounts_regions(self, fpga_with_two):
        assert fpga_with_two.free_area() == 64 - 12 - 4


class TestKernelEdges:
    def test_spawn_in_the_past_rejected(self):
        from repro.osim import CpuBurst, Kernel, NullFpgaService, RoundRobin, Task
        from repro.sim import Simulator

        sim = Simulator()
        kernel = Kernel(sim, RoundRobin(), NullFpgaService())
        kernel.spawn(Task("t", [CpuBurst(1.0)]))
        sim.run(until=5.0)
        with pytest.raises(ValueError, match="past"):
            kernel.spawn(Task("late", [CpuBurst(1.0)], arrival=1.0))

    def test_next_fpga_config_unknown_task(self):
        from repro.osim import Kernel, NullFpgaService, RoundRobin, Task
        from repro.sim import Simulator

        kernel = Kernel(Simulator(), RoundRobin(), NullFpgaService())
        assert kernel.next_fpga_config(Task("ghost", [])) is None


class TestAnalysisStrs:
    def test_summary_str(self):
        from repro.analysis import summarize

        text = str(summarize([1.0, 2.0, 3.0]))
        assert "n=3" in text and "2" in text
