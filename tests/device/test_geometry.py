"""Unit tests for grid geometry."""

import pytest

from repro.device import Coord, Rect


class TestCoord:
    def test_translate(self):
        assert Coord(1, 2).translated(3, -1) == Coord(4, 1)

    def test_tuple_behaviour(self):
        x, y = Coord(5, 7)
        assert (x, y) == (5, 7)


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(0, 0, 5, -1)

    def test_negative_origin_rejected(self):
        with pytest.raises(ValueError):
            Rect(-1, 0, 2, 2)

    def test_area_and_bounds(self):
        r = Rect(2, 3, 4, 5)
        assert r.area == 20
        assert (r.x2, r.y2) == (6, 8)

    def test_contains(self):
        r = Rect(1, 1, 2, 2)
        assert r.contains(Coord(1, 1))
        assert r.contains(Coord(2, 2))
        assert not r.contains(Coord(3, 1))
        assert not r.contains(Coord(0, 1))

    def test_contains_rect(self):
        outer = Rect(0, 0, 4, 4)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(3, 3, 2, 2))

    def test_overlaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # edge-adjacent: no overlap
        assert not a.overlaps(Rect(0, 2, 2, 2))

    def test_translated(self):
        assert Rect(1, 1, 2, 3).translated(2, 0) == Rect(3, 1, 2, 3)

    def test_coords_column_major(self):
        r = Rect(0, 0, 2, 2)
        assert list(r.coords()) == [Coord(0, 0), Coord(0, 1), Coord(1, 0), Coord(1, 1)]

    def test_split_vertical(self):
        left, right = Rect(0, 0, 4, 2).split_vertical(1)
        assert left == Rect(0, 0, 1, 2)
        assert right == Rect(1, 0, 3, 2)
        with pytest.raises(ValueError):
            Rect(0, 0, 4, 2).split_vertical(4)

    def test_split_horizontal(self):
        bottom, top = Rect(0, 0, 2, 4).split_horizontal(3)
        assert bottom == Rect(0, 0, 2, 3)
        assert top == Rect(0, 3, 2, 1)
        with pytest.raises(ValueError):
            Rect(0, 0, 2, 4).split_horizontal(0)

    def test_split_partition_is_exact(self):
        r = Rect(2, 2, 6, 4)
        a, b = r.split_vertical(2)
        assert a.area + b.area == r.area
        assert not a.overlaps(b)
        assert r.contains_rect(a) and r.contains_rect(b)
