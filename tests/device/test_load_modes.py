"""Delta-reconfiguration engine and vectorized codec tests.

The frame-delta engine must be *invisible* in configuration content —
only the charged port time and the written-frame count may change — and
the vectorized bit packing must reproduce the scalar reference encoding
byte for byte.
"""

import numpy as np
import pytest

from repro.device import (
    Architecture,
    Bitstream,
    ClbConfig,
    ConfigRam,
    Fpga,
    FrameCodec,
    Rect,
    digest_bits,
)
from repro.device.config_ram import _bits_to_int, _int_to_bits


@pytest.fixture
def arch():
    return Architecture("t", 4, 4, k=4, channel_width=4)


def make_bitstream(arch, name, x, y, w, h, n_ffs, truth=0xBEEF):
    """A relocatable bitstream with real (non-zero) CLB content."""
    clbs, state = {}, {}
    coords = list(Rect(x, y, w, h).coords())
    for i in range(n_ffs):
        c = coords[i]
        clbs[c] = ClbConfig(
            lut_truth=truth, ff_enable=True, out_registered=True,
            input_sel=(0,) * arch.k,
        )
        state[f"{name}_ff{i}"] = c
    return Bitstream(
        name=name, arch_name=arch.name, region=Rect(x, y, w, h),
        clbs=clbs, relocatable=True, state_bits=state,
    )


# -- satellite: vectorized bit packing vs the scalar reference ---------------
def scalar_int_to_bits(value, n):
    return np.array([(value >> i) & 1 for i in range(n)], dtype=np.uint8)


def scalar_bits_to_int(bits):
    value = 0
    for i, b in enumerate(bits):
        value |= int(b) << i
    return value


class TestVectorizedCodec:
    @pytest.mark.parametrize("n", [1, 3, 7, 8, 9, 16, 31, 64])
    def test_int_to_bits_matches_scalar_reference(self, n):
        values = [0, 1, (1 << n) - 1, (1 << n) // 3, 1 << (n - 1)]
        for v in values:
            got = _int_to_bits(v, n)
            want = scalar_int_to_bits(v, n)
            assert got.dtype == np.uint8
            assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("n", [1, 5, 12, 33])
    def test_bits_to_int_roundtrip(self, n):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=n, dtype=np.uint8)
        assert _bits_to_int(bits) == scalar_bits_to_int(bits)
        assert _bits_to_int(_int_to_bits(12345 % (1 << n), n)) == 12345 % (1 << n)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            _int_to_bits(8, 3)
        with pytest.raises(ValueError):
            _int_to_bits(-1, 4)

    def test_clb_field_matches_scalar_reference(self, arch):
        """The preallocated encoder reproduces the concatenate-chain
        layout byte for byte."""
        codec = FrameCodec(arch)
        cfg = ClbConfig(
            lut_truth=0xBEEF, ff_enable=True, ff_init=1,
            out_registered=True, input_sel=(1, 0, 7, 16),
            out_drives=frozenset({0, 5, 15}),
        )
        parts = [
            scalar_int_to_bits(cfg.lut_truth, 1 << arch.k),
            np.array([1, 1, 1], dtype=np.uint8),
        ]
        for sel in cfg.input_sel:
            parts.append(scalar_int_to_bits(sel, arch.input_sel_bits))
        mask = np.zeros(4 * arch.channel_width, dtype=np.uint8)
        for idx in cfg.out_drives:
            mask[idx] = 1
        parts.append(mask)
        want = np.concatenate(parts)
        assert codec.encode_clb(cfg).tobytes() == want.tobytes()

    def test_whole_frame_image_matches_per_field_layout(self, arch):
        codec = FrameCodec(arch)
        bs = make_bitstream(arch, "c", 1, 1, 2, 2, 3)
        frames = codec.build_frames(bs.clbs, bs.switches, bs.iobs)
        clbs, switches, iobs = codec.decode_frames(frames)
        assert clbs == bs.clbs
        assert switches == dict(bs.switches)
        assert iobs == dict(bs.iobs)


# -- ConfigRam digests -------------------------------------------------------
class TestFrameDigests:
    def test_digest_tracks_content(self, arch):
        ram = ConfigRam(arch)
        d0 = ram.frame_digest(0)
        assert d0 == digest_bits(np.zeros(arch.frame_bits, dtype=np.uint8))
        bits = np.ones(arch.frame_bits, dtype=np.uint8)
        ram.write_frame(0, bits)
        assert ram.frame_digest(0) == digest_bits(bits)
        assert ram.frame_digest(0) != d0

    def test_flip_bit_invalidates(self, arch):
        ram = ConfigRam(arch)
        before = ram.frame_digest(2)
        ram.flip_bit(2, 5)
        assert ram.frames[2, 5] == 1
        assert ram.frame_digest(2) != before
        ram.flip_bit(2, 5)
        assert ram.frame_digest(2) == before

    def test_clear_resets_digests(self, arch):
        ram = ConfigRam(arch)
        ram.write_frame(1, np.ones(arch.frame_bits, dtype=np.uint8))
        ram.clear()
        assert ram.frame_digest(1) == digest_bits(
            np.zeros(arch.frame_bits, dtype=np.uint8)
        )

    def test_precomputed_digest_trusted(self, arch):
        ram = ConfigRam(arch)
        bits = np.ones(arch.frame_bits, dtype=np.uint8)
        d = digest_bits(bits)
        ram.write_frame(0, bits, digest=d)
        assert ram.frame_digest(0) == d


# -- the delta engine --------------------------------------------------------
class TestDeltaLoads:
    def test_bit_exact_across_modes(self, arch):
        """Every mode leaves the RAM in the identical state after an
        arbitrary load/unload/reload sequence."""
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 5)
        b = make_bitstream(arch, "b", 2, 0, 2, 4, 5)
        rams = {}
        for mode in ("full", "delta", "auto"):
            f = Fpga(arch)
            f.load("a", a, mode=mode)
            f.load("b", b, mode=mode)
            f.unload("a", mode=mode)
            f.load("a2", a, mode=mode)
            rams[mode] = f.ram.frames.copy()
        assert np.array_equal(rams["full"], rams["delta"])
        assert np.array_equal(rams["full"], rams["auto"])

    def test_delta_charges_only_changed_frames(self, arch):
        a = make_bitstream(arch, "a", 0, 0, 3, 4, 4)  # FFs fill column 0
        f = Fpga(arch)
        t = f.load("a", a, mode="delta")
        assert t.mode == "delta"
        assert t.n_frames == 3           # frames addressed (whole region)
        assert t.frames_written == 1     # only the FF column has content
        assert t.seconds == f.port.delta_frame_write_time(1)
        # Unloading writes back only that same frame.
        t = f.unload("a", mode="delta")
        assert t.frames_written == 1

    def test_identical_reload_into_cleared_region(self, arch):
        """Unload zeroes the owned bits; reloading identical content must
        rewrite them (delta is honest, not magical)."""
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 2)
        f = Fpga(arch)
        f.load("a", a, mode="delta")
        f.unload("a", mode="delta")
        t = f.load("a2", a, mode="delta")
        assert t.frames_written == 1

    def test_delta_can_lose_and_auto_falls_back(self, arch):
        """When every touched frame changed, the per-frame address header
        makes delta strictly worse; auto must fall back to full."""
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 8)  # both columns hold FFs
        full = Fpga(arch).load("f", a, mode="full")
        delta = Fpga(arch).load("d", a, mode="delta")
        auto = Fpga(arch).load("x", a, mode="auto")
        assert delta.frames_written == full.n_frames  # everything changed
        assert delta.seconds > full.seconds
        assert auto.mode == "partial"
        assert auto.seconds == full.seconds

    def test_auto_never_exceeds_full(self, arch):
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 3)
        b = make_bitstream(arch, "b", 0, 0, 2, 4, 3, truth=0x1234)
        for sequence in (("a", "b"), ("a", "a"), ("b", "a")):
            f_full, f_auto = Fpga(arch), Fpga(arch)
            total_full = total_auto = 0.0
            streams = {"a": a, "b": b}
            for i, name in enumerate(sequence):
                bs = streams[name]
                total_full += f_full.load(f"h{i}", bs, mode="full").seconds
                total_full += f_full.unload(f"h{i}", mode="full").seconds
                total_auto += f_auto.load(f"h{i}", bs, mode="auto").seconds
                total_auto += f_auto.unload(f"h{i}", mode="auto").seconds
            assert total_auto <= total_full + 1e-15
            assert np.array_equal(f_full.ram.frames, f_auto.ram.frames)

    def test_upset_invalidates_delta_diff(self, arch):
        """A flipped bit must be seen by the next delta reload — the
        scrub-repair path depends on it."""
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 2)
        f = Fpga(arch)
        f.load("a", a, mode="delta")
        golden = f.ram.frames.copy()
        f.ram.flip_bit(0, 3)
        f.unload("a", mode="delta")
        t = f.load("a2", a, mode="delta")
        assert t.frames_written >= 1
        assert np.array_equal(f.ram.frames, golden)

    def test_non_partial_device_always_full_serial(self):
        arch = Architecture("np", 4, 4, k=4, channel_width=4,
                            supports_partial=False)
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 2)
        for mode in ("full", "delta", "auto"):
            f = Fpga(arch)
            t = f.load("a", a, mode=mode)
            assert t.mode == "full-serial"
            assert t.seconds == arch.full_config_time

    def test_bad_mode_rejected(self, arch):
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 2)
        with pytest.raises(ValueError):
            Fpga(arch).load("a", a, mode="incremental")

    def test_wipe_resets_digests(self, arch):
        a = make_bitstream(arch, "a", 0, 0, 2, 4, 4)
        f = Fpga(arch)
        f.load("a", a, mode="delta")
        f.wipe()
        assert not f.ram.frames.any()
        # A delta load after the wipe must rewrite the content frame.
        t = f.load("a2", a, mode="delta")
        assert t.frames_written == 1

    def test_image_load_matches_encode(self, arch):
        a = make_bitstream(arch, "a", 1, 0, 2, 4, 3)
        image = FrameCodec(arch).build_frames(a.clbs, a.switches, a.iobs)
        f_img, f_enc = Fpga(arch), Fpga(arch)
        f_img.load("a", a, mode="delta", image=image)
        f_enc.load("a", a, mode="delta")
        assert np.array_equal(f_img.ram.frames, f_enc.ram.frames)
