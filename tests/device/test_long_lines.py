"""Long-distance interconnect tests (paper §2's long busses)."""

import pytest

from repro.device import (
    Architecture,
    Bitstream,
    BitstreamError,
    ClbConfig,
    Coord,
    Fpga,
    Rect,
    Wire,
    hlong_wires,
    long_switch_stubs,
    vlong_wires,
)


@pytest.fixture
def arch():
    return Architecture("t", 6, 6, k=4, channel_width=4, long_per_channel=2)


class TestEnumeration:
    def test_counts(self, arch):
        assert len(hlong_wires(arch)) == (arch.height + 1) * 2
        assert len(vlong_wires(arch)) == (arch.width + 1) * 2

    def test_stubs_tap_same_index_track(self, arch):
        (hl, hr), (vl, va) = long_switch_stubs(arch, 2, 3, 1)
        assert hl == Wire("HL", 0, 3, 1)
        assert hr == Wire("H", 2, 3, 1)
        assert vl == Wire("VL", 2, 0, 1)
        assert va == Wire("V", 2, 3, 1)

    def test_stub_none_at_far_edge(self, arch):
        (hl, hr), (vl, va) = long_switch_stubs(arch, arch.width, arch.height, 0)
        assert hr is None and va is None

    def test_validation(self):
        with pytest.raises(ValueError, match="long_per_channel"):
            Architecture("bad", 4, 4, channel_width=4, long_per_channel=5)

    def test_disabled(self):
        a = Architecture("nolong", 4, 4, long_per_channel=0)
        assert hlong_wires(a) == []
        assert a.switchbox_config_bits == 6 * a.channel_width


class TestFunctionalLongRoute:
    def test_long_line_carries_signal_across_device(self, arch):
        """Hand-built: CLB (0,0) drives H(0,0,0) → HL(y=0,0) via box (1,0)
        → back down to H(5,0,0) via box (5,0) → CLB (5,0) input."""
        receiver = ClbConfig(
            lut_truth=0xAAAA, input_sel=(1, 0, 0, 0),  # BUF of below trk 0
            out_drives=frozenset({2}),                 # observe on trk 2
        )
        driver = ClbConfig(
            lut_truth=0x5555, input_sel=(2, 0, 0, 0),  # NOT of below trk 1
            out_drives=frozenset({0}),                 # drive below trk 0
        )
        fpga = Fpga(arch)
        bs = Bitstream(
            name="long", arch_name=arch.name, region=arch.full_rect,
            clbs={Coord(0, 0): driver, Coord(5, 0): receiver},
            switches={
                Coord(0, 0): frozenset({(0, 6)}),
                Coord(5, 0): frozenset({(0, 6)}),
            },
            relocatable=False,
        )
        fpga.load("t", bs)
        stim_wire = Wire("H", 0, 0, 1)
        sim = fpga.functional_simulator(external_drivers=[stim_wire])
        out_wire = Wire("H", 5, 0, 2)
        for v in (0, 1):
            nets = sim.evaluate({stim_wire: v})
            assert sim.observe(out_wire, nets) == 1 - v

    def test_relocatable_cannot_use_long_lines(self, arch):
        bs = Bitstream(
            name="bad", arch_name=arch.name, region=Rect(1, 1, 2, 2),
            switches={Coord(1, 1): frozenset({(0, 6)})},
            relocatable=True,
        )
        with pytest.raises(BitstreamError, match="long lines"):
            bs.validate(arch)


class TestRoutingWithLongLines:
    def test_dedicated_cross_chip_net_uses_long_line(self):
        """On a wide device a corner-to-corner net should take the long
        line (cheaper than ~20 segment hops)."""
        from repro.cad import NetSpec, Router, RoutingGraph

        arch = Architecture("wide", 16, 16, channel_width=4, long_per_channel=2)
        g = RoutingGraph(arch)
        r = Router(g)
        net = NetSpec(
            "n", ("clb", Coord(0, 0)), [("clbpin", Coord(15, 0), 0)]
        )
        routed = r.route([net])["n"]
        long_used = [
            nid for nid in routed.nodes if g.is_long(nid)
        ]
        assert long_used, "expected the router to take a long line"
        # And the path stats record it for timing.
        stats = routed.sink_path_stats[("clbpin", Coord(15, 0), 0)]
        assert stats[2] >= 1

    def test_long_lines_shorten_critical_path(self):
        """Dedicated compile of a cross-chip circuit: enabling long lines
        must not lengthen (and normally shortens) the max net delay."""
        from repro.cad import NetSpec, Router, RoutingGraph

        def max_delay(long_per_channel):
            arch = Architecture("w", 16, 16, channel_width=4,
                                long_per_channel=long_per_channel)
            g = RoutingGraph(arch)
            r = Router(g)
            net = NetSpec("n", ("clb", Coord(0, 8)),
                          [("clbpin", Coord(15, 8), 0)])
            routed = r.route([net])["n"]
            w, s, lw = routed.sink_path_stats[("clbpin", Coord(15, 8), 0)]
            return (w * arch.wire_delay + s * arch.switch_delay
                    + lw * arch.long_wire_delay)

        assert max_delay(2) < max_delay(0)
