"""ConfigPort timing-model unit tests."""

import pytest

from repro.core import synthetic_bitstream
from repro.device import Architecture, ConfigPort


@pytest.fixture
def arch():
    return Architecture("t", 8, 8, channel_width=4, serial_rate=1e6,
                        frame_overhead=5e-6, readback_rate=2e6)


@pytest.fixture
def port(arch):
    return ConfigPort(arch)


class TestFullConfig:
    def test_full_serial_time(self, arch, port):
        t = port.full_config()
        assert t.mode == "full-serial"
        assert t.n_frames == arch.n_frames
        assert t.seconds == pytest.approx(arch.total_config_bits / 1e6)

    def test_full_config_matches_arch_property(self, arch, port):
        assert port.full_config().seconds == pytest.approx(
            arch.full_config_time
        )


class TestPartialLoads:
    def test_load_time_frame_proportional(self, arch, port):
        narrow = synthetic_bitstream("n", arch, 2, 4)
        wide = synthetic_bitstream("w", arch, 6, 4)
        tn, tw = port.load_time(narrow), port.load_time(wide)
        assert tn.mode == tw.mode == "partial"
        assert tn.n_frames == 2 and tw.n_frames == 6
        assert tw.seconds == pytest.approx(3 * tn.seconds)

    def test_frame_write_formula(self, arch, port):
        per_frame = arch.frame_overhead + arch.frame_bits / arch.serial_rate
        assert port.frame_write_time(5) == pytest.approx(5 * per_frame)

    def test_unload_costs_like_load(self, arch, port):
        bs = synthetic_bitstream("x", arch, 3, 3)
        assert port.unload_time(bs).seconds == pytest.approx(
            port.load_time(bs).seconds
        )

    def test_non_partial_always_full(self, arch):
        serial_only = arch.scaled(supports_partial=False)
        port = ConfigPort(serial_only)
        bs = synthetic_bitstream("x", serial_only, 2, 2)
        t = port.load_time(bs)
        assert t.mode == "full-serial"
        assert t.seconds == pytest.approx(serial_only.full_config_time)


class TestStateMovement:
    def test_save_touches_only_ff_frames(self, arch, port):
        # 4 state bits in a 2-wide region: FFs packed column-major into
        # column 0 (height 8 >= 4), so exactly 1 frame.
        bs = synthetic_bitstream("s", arch, 2, 8, n_state_bits=4)
        t = port.state_save_time(bs)
        assert t.mode == "readback"
        assert t.n_frames == 1

    def test_save_cost_uses_readback_rate(self, arch, port):
        bs = synthetic_bitstream("s", arch, 2, 8, n_state_bits=4)
        expect = 1 * (arch.frame_overhead + arch.frame_bits / arch.readback_rate)
        assert port.state_save_time(bs).seconds == pytest.approx(expect)

    def test_restore_is_read_modify_write(self, arch, port):
        bs = synthetic_bitstream("s", arch, 2, 8, n_state_bits=4)
        save = port.state_save_time(bs).seconds
        restore = port.state_restore_time(bs).seconds
        assert restore > save  # adds the write-back

    def test_combinational_state_is_free(self, arch, port):
        bs = synthetic_bitstream("c", arch, 3, 3, n_state_bits=0)
        assert port.state_save_time(bs).seconds == 0
        assert port.state_restore_time(bs).seconds == 0

    def test_state_cost_scales_with_ff_spread(self, arch, port):
        packed = synthetic_bitstream("p", arch, 2, 8, n_state_bits=8)   # 1 col
        spread = synthetic_bitstream("q", arch, 8, 8, n_state_bits=64)  # 8 cols
        assert (port.state_save_time(spread).seconds
                > port.state_save_time(packed).seconds)
