"""End-to-end integration: every generator through the whole stack.

netlist → techmap → pack → place → route → bitstream → frames → decode →
functional simulation vs the gate-level golden model — for the full
circuit suite, in both anchorings, plus multi-circuit coexistence.
"""

import pytest

from repro.cad import compile_netlist, verify_bitstream
from repro.device import Fpga, get_family
from repro.netlist import (
    accumulator,
    alu,
    array_multiplier,
    comparator,
    counter,
    lfsr,
    moore_fsm,
    moving_sum_fir,
    parity_tree,
    random_logic,
    ripple_adder,
    serial_crc,
    shift_register,
)

SUITE = [
    ("adder", lambda: ripple_adder(4), "VF8"),
    ("mult", lambda: array_multiplier(3), "VF12"),
    ("cmp", lambda: comparator(4), "VF8"),
    ("parity", lambda: parity_tree(8), "VF8"),
    ("alu", lambda: alu(3), "VF10"),
    ("rand", lambda: random_logic(50, 8, 4, seed=12), "VF10"),
    ("counter", lambda: counter(5), "VF8"),
    ("lfsr", lambda: lfsr(6), "VF8"),
    ("shift", lambda: shift_register(8), "VF8"),
    ("crc", lambda: serial_crc(8, 0x07), "VF8"),
    ("accum", lambda: accumulator(4), "VF8"),
    ("fsm", lambda: moore_fsm(16, 3, seed=2), "VF8"),
    ("fir", lambda: moving_sum_fir(3, 2), "VF12"),
]


@pytest.mark.parametrize("name,factory,family",
                         SUITE, ids=[s[0] for s in SUITE])
def test_full_stack_equivalence(name, factory, family):
    nl = factory()
    arch = get_family(family)
    res = compile_netlist(nl, arch, seed=2, effort="greedy")
    verify_bitstream(nl, res.bitstream, arch, seed=3)


@pytest.mark.parametrize("name,factory,family",
                         SUITE[:6], ids=[s[0] for s in SUITE[:6]])
def test_relocated_equivalence(name, factory, family):
    nl = factory()
    arch = get_family(family)
    res = compile_netlist(nl, arch, seed=2, effort="greedy")
    r = res.bitstream.region
    moved = res.bitstream.anchored_at(arch.width - r.w, arch.height - r.h)
    verify_bitstream(nl, moved, arch, seed=4)


def test_three_circuits_coexist_and_all_verify():
    """Load three compiled circuits side by side and verify each while the
    others stay resident — partition isolation, functionally proven."""
    arch = get_family("VF16")
    circuits = [
        (parity_tree(6), compile_netlist(parity_tree(6), arch, seed=1,
                                         effort="greedy")),
        (counter(4), compile_netlist(counter(4), arch, seed=1,
                                     effort="greedy")),
        (serial_crc(4, 0x3), compile_netlist(serial_crc(4, 0x3), arch,
                                             seed=1, effort="greedy")),
    ]
    fpga = Fpga(arch)
    x = 0
    placed = []
    for nl, res in circuits:
        bs = res.bitstream.anchored_at(x, 0)
        fpga.load(bs.name, bs)
        placed.append((nl, bs))
        x += bs.region.w
    # Verify every circuit with the others resident (shared frames!).
    from repro.netlist import LogicSimulator

    for nl, bs in placed:
        view = fpga.view(bs.name)
        golden = LogicSimulator(nl)
        import random

        rng = random.Random(99)
        names = [c.name for c in nl.primary_inputs]
        if nl.state_bits == 0:
            for _ in range(10):
                vec = {n: rng.randint(0, 1) for n in names}
                assert view.evaluate(vec) == golden.evaluate(vec)
        else:
            for _ in range(10):
                vec = {n: rng.randint(0, 1) for n in names}
                assert view.step(vec) == golden.step(vec)


def test_unload_middle_circuit_preserves_neighbours():
    arch = get_family("VF16")
    nls = [parity_tree(4), parity_tree(5), parity_tree(6)]
    streams = []
    x = 0
    fpga = Fpga(arch)
    for i, nl in enumerate(nls):
        res = compile_netlist(nl, arch, seed=1, effort="greedy")
        bs = res.bitstream.anchored_at(x, 0)
        fpga.load(f"c{i}", bs)
        streams.append(bs)
        x += bs.region.w
    fpga.unload("c1")
    # c0 and c2 still compute correctly.
    from repro.netlist import LogicSimulator

    for idx, nl in ((0, nls[0]), (2, nls[2])):
        view = fpga.view(f"c{idx}")
        golden = LogicSimulator(nl)
        width = len(nl.primary_inputs)
        for value in (0, (1 << width) - 1, 0b1010101 & ((1 << width) - 1)):
            vec = LogicSimulator.pack_bus("d", value, width)
            assert view.evaluate(vec) == golden.evaluate(vec)


def test_sequential_state_survives_neighbour_reload():
    """Reloading an adjacent region must not disturb a sequential
    circuit's flip-flops (frame read-modify-write correctness)."""
    arch = get_family("VF12")
    cnt = counter(4)
    res_cnt = compile_netlist(cnt, arch, seed=1, effort="greedy")
    par = parity_tree(4)
    res_par = compile_netlist(par, arch, seed=1, effort="greedy")
    fpga = Fpga(arch)
    bs_cnt = res_cnt.bitstream.anchored_at(0, 0)
    fpga.load("cnt", bs_cnt)
    view = fpga.view("cnt")
    for _ in range(5):
        view.step({"en": 1})
    saved = view.read_state()
    # Load and unload a neighbour (shares no frames? shares none since
    # anchored beyond the counter's columns — but the RMW path is what we
    # exercise when columns do overlap rows; do both).
    bs_par = res_par.bitstream.anchored_at(bs_cnt.region.w, 0)
    fpga.load("par", bs_par)
    fpga.unload("par")
    # The counter's *configuration* is untouched; its simulator state is
    # reconstructed from our snapshot (readback) and must continue exactly.
    view2 = fpga.view("cnt")
    view2.write_state(saved)
    out = view2.step({"en": 1})
    from repro.netlist import LogicSimulator

    assert LogicSimulator.unpack_bus(out, "q") == 5
