"""Example-script health: quickstart runs end to end; all examples at
least parse/compile (their work is __main__-guarded)."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + three domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        cwd=pathlib.Path(__file__).parents[2],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "9 + 5 = 14" in out
    assert "hidden cost" in out
    assert "partitioned virtualization" in out


def test_quickstart_report_and_trace_together(tmp_path):
    """Regression guard: ``--report`` combined with ``--trace`` must
    emit *both* artifacts from the same run (neither flag may silently
    eat the other)."""
    trace_path = tmp_path / "quickstart_trace.json"
    proc = subprocess.run(
        [sys.executable, "examples/quickstart.py",
         "--report", "--trace", str(trace_path)],
        cwd=pathlib.Path(__file__).parents[2],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    # The trace file exists and is a real Chrome trace...
    assert trace_path.exists(), "--trace was ignored"
    import json

    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    # ...and the report tables were printed in the same run.
    assert "p50" in out and "CLB occupancy" in out, "--report was ignored"
    assert str(trace_path) in out
