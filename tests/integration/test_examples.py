"""Example-script health: quickstart runs end to end; all examples at
least parse/compile (their work is __main__-guarded)."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + three domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        cwd=pathlib.Path(__file__).parents[2],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "9 + 5 = 14" in out
    assert "hidden cost" in out
    assert "partitioned virtualization" in out
