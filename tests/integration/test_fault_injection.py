"""Failure injection: the configuration bits are authoritative.

These tests corrupt raw frame bits and check that the device-side
machinery (decode → electrical checks → functional comparison) catches
the corruption — nothing in the stack trusts CAD-side metadata.
"""

import numpy as np
import pytest

from repro.cad import VerificationError, compile_netlist, verify_bitstream
from repro.device import ConfigurationError, Fpga, get_family
from repro.netlist import LogicSimulator, parity_tree, ripple_adder

ARCH = get_family("VF8")


@pytest.fixture(scope="module")
def compiled():
    nl = ripple_adder(3)
    res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
    return nl, res.bitstream


def flip_result(fpga, nl, handle, n_vectors=40):
    """Return True if the loaded circuit still matches the golden model."""
    import random

    view = fpga.view(handle)
    golden = LogicSimulator(nl)
    rng = random.Random(17)
    names = [c.name for c in nl.primary_inputs]
    for _ in range(n_vectors):
        vec = {n: rng.randint(0, 1) for n in names}
        if view.evaluate(vec) != golden.evaluate(vec):
            return False
    return True


class TestBitCorruption:
    def test_lut_truth_bit_flip_changes_function(self, compiled):
        nl, bs = compiled
        fpga = Fpga(ARCH)
        fpga.load("c", bs)
        assert flip_result(fpga, nl, "c")
        # Flip one LUT truth bit of a used CLB, in the raw frames.
        coord = next(c for c, cfg in bs.clbs.items() if cfg.lut_truth)
        offset = fpga.codec.clb_offset(coord.y)  # truth bits start here
        bit = offset + int(bs.clbs[coord].lut_truth.bit_length()) - 1
        fpga.ram.frames[coord.x, bit] ^= 1
        corrupted_ok = True
        try:
            corrupted_ok = flip_result(fpga, nl, "c")
        except ConfigurationError:
            corrupted_ok = False  # also an acceptable detection
        assert not corrupted_ok, "flipping a truth bit must change behaviour"

    def test_switch_bit_flip_detected_or_changes_function(self, compiled):
        nl, bs = compiled
        fpga = Fpga(ARCH)
        fpga.load("c", bs)
        # Enable extra switches inside the region: a flip touching a used
        # net either shorts two nets (ConfigurationError) or rewires logic
        # (function change).  Flips joining two *unused* wires are
        # legitimately silent, so scan until a consequential one is found.
        detected = False
        for (bx, by) in bs.switches:
            sw_off = fpga.codec.switch_offset_in_clb_frame(by)
            field = fpga.ram.frames[
                bx, sw_off:sw_off + ARCH.switchbox_config_bits
            ]
            for flip in np.nonzero(field == 0)[0]:
                fpga.ram.frames[bx, sw_off + int(flip)] ^= 1
                try:
                    if not flip_result(fpga, nl, "c", n_vectors=12):
                        detected = True
                except (ConfigurationError, KeyError):
                    detected = True
                fpga.ram.frames[bx, sw_off + int(flip)] ^= 1  # restore
                if detected:
                    break
            if detected:
                break
        assert detected, "no switch flip had any observable consequence"

    def test_verify_bitstream_catches_wrong_truth(self):
        nl = parity_tree(4)
        res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
        bs = res.bitstream
        # Corrupt the structured view (a wrong compile result).
        coord, cfg = next(
            (c, cfg) for c, cfg in bs.clbs.items() if cfg.lut_truth
        )
        from dataclasses import replace as dc_replace

        bad_clbs = dict(bs.clbs)
        bad_clbs[coord] = dc_replace(cfg, lut_truth=cfg.lut_truth ^ 0b1)
        bad = dc_replace(bs, clbs=bad_clbs)
        with pytest.raises(VerificationError):
            verify_bitstream(nl, bad, ARCH)


class TestElectricalDetection:
    def test_overlapping_partitions_short_detected(self):
        """Two circuits forced into overlapping regions: the device's
        load-time overlap check fires; if bypassed, the electrical check
        would."""
        from repro.device import BitstreamError

        nl = parity_tree(4)
        res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
        fpga = Fpga(ARCH)
        fpga.load("a", res.bitstream.anchored_at(0, 0))
        with pytest.raises(BitstreamError, match="overlaps"):
            fpga.load("b", res.bitstream.anchored_at(1, 1))

    def test_stale_view_after_unload_rejected(self):
        from repro.device import BitstreamError

        nl = parity_tree(4)
        res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
        fpga = Fpga(ARCH)
        fpga.load("a", res.bitstream)
        fpga.unload("a")
        with pytest.raises(BitstreamError):
            fpga.view("a")
