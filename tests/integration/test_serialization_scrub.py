"""Serialization round-trips and configuration scrubbing."""

import pytest

from repro.cad import compile_netlist, verify_bitstream
from repro.device import (
    Fpga,
    bitstream_from_dict,
    bitstream_to_dict,
    get_family,
    load_bitstream,
    save_bitstream,
)
from repro.netlist import (
    LogicSimulator,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    parity_tree,
    ripple_adder,
    save_netlist,
    serial_crc,
)

ARCH = get_family("VF8")


class TestNetlistRoundtrip:
    @pytest.mark.parametrize("factory", [
        lambda: ripple_adder(4),
        lambda: serial_crc(8, 0x07),
    ], ids=["adder", "crc"])
    def test_dict_roundtrip_preserves_function(self, factory):
        import random

        nl = factory()
        back = netlist_from_dict(netlist_to_dict(nl))
        assert [c.name for c in back.cells.values()] == \
            [c.name for c in nl.cells.values()]
        s1, s2 = LogicSimulator(nl), LogicSimulator(back)
        rng = random.Random(1)
        names = [c.name for c in nl.primary_inputs]
        stim = [{n: rng.randint(0, 1) for n in names} for _ in range(10)]
        assert s1.run(stim) == s2.run(stim)

    def test_file_roundtrip(self, tmp_path):
        nl = ripple_adder(3)
        path = tmp_path / "adder.json"
        save_netlist(nl, path)
        assert load_netlist(path).name == "adder3"

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="repro-netlist"):
            netlist_from_dict({"format": "pdf", "name": "x", "cells": []})


class TestBitstreamRoundtrip:
    @pytest.fixture(scope="class")
    def compiled(self):
        nl = serial_crc(4, 0x3)
        return nl, compile_netlist(nl, ARCH, seed=1, effort="greedy").bitstream

    def test_dict_roundtrip_equal(self, compiled):
        _nl, bs = compiled
        back = bitstream_from_dict(bitstream_to_dict(bs))
        assert back.clbs == bs.clbs
        assert back.switches == bs.switches
        assert back.state_bits == bs.state_bits
        assert back.virtual_inputs == bs.virtual_inputs
        assert back.region == bs.region

    def test_roundtripped_bitstream_still_verifies(self, compiled, tmp_path):
        nl, bs = compiled
        path = tmp_path / "crc.json"
        save_bitstream(bs, path)
        back = load_bitstream(path)
        verify_bitstream(nl, back, ARCH)

    def test_roundtrip_then_relocate(self, compiled):
        nl, bs = compiled
        back = bitstream_from_dict(bitstream_to_dict(bs))
        moved = back.anchored_at(3, 3)
        verify_bitstream(nl, moved, ARCH)

    def test_dedicated_roundtrip(self):
        nl = parity_tree(4)
        bs = compile_netlist(nl, ARCH, mode="dedicated", seed=1).bitstream
        back = bitstream_from_dict(bitstream_to_dict(bs))
        assert back.pad_inputs == bs.pad_inputs
        verify_bitstream(nl, back, ARCH)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="repro-bitstream"):
            bitstream_from_dict({"format": "elf"})


class TestScrub:
    @pytest.fixture
    def loaded(self):
        nl = parity_tree(4)
        bs = compile_netlist(nl, ARCH, seed=1, effort="greedy").bitstream
        fpga = Fpga(ARCH)
        fpga.load("p", bs)
        return fpga, bs

    def test_clean_device_scrubs_clean(self, loaded):
        fpga, _bs = loaded
        assert fpga.scrub() == []

    def test_corruption_detected_and_named(self, loaded):
        fpga, bs = loaded
        coord = next(iter(bs.clbs))
        off = fpga.codec.clb_offset(coord.y)
        fpga.ram.frames[coord.x, off] ^= 1
        assert fpga.scrub() == ["p"]

    def test_reload_heals(self, loaded):
        fpga, bs = loaded
        coord = next(iter(bs.clbs))
        fpga.ram.frames[coord.x, fpga.codec.clb_offset(coord.y)] ^= 1
        fpga.unload("p")
        fpga.load("p", bs)
        assert fpga.scrub() == []

    def test_corruption_outside_regions_ignored(self, loaded):
        fpga, bs = loaded
        # A bit in an unowned frame (far column) is not any resident's
        # problem.
        fpga.ram.frames[ARCH.width - 1, 0] ^= 1
        assert fpga.scrub() == []

    def test_scrub_time_positive_and_frame_scaled(self, loaded):
        fpga, bs = loaded
        t1 = fpga.scrub_time()
        assert t1 > 0
        nl2 = parity_tree(5)
        bs2 = compile_netlist(nl2, ARCH, seed=1, effort="greedy").bitstream
        fpga.load("q", bs2.anchored_at(4, 4))
        assert fpga.scrub_time() > t1
