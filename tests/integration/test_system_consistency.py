"""System-level consistency: accounting, work conservation, determinism,
and functional integrity under OS management."""

import pytest

from repro.core import ConfigRegistry, VirtualFpga, make_service
from repro.device import get_family
from repro.netlist import LogicSimulator, counter, parity_tree
from repro.osim import Kernel, RoundRobin, uniform_workload
from repro.sim import Simulator

CP = 25e-9


def build_registry():
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    for i, w in enumerate([3, 4, 5]):
        reg.register_synthetic(f"f{i}", w, arch.height, critical_path=CP)
    return reg


def run(policy, tasks, **kw):
    reg = build_registry()
    sim = Simulator()
    service = make_service(policy, reg, **kw)
    kernel = Kernel(sim, RoundRobin(time_slice=1e-3), service)
    kernel.spawn_all(tasks)
    return kernel.run(), service


def workload(cycles=100_000):
    return uniform_workload(["f0", "f1", "f2"], n_tasks=6, ops_per_task=3,
                            cpu_burst=1e-3, cycles=cycles, seed=31)


POLICIES = [
    ("nonpreemptable", {}),
    ("dynamic", {}),
    ("dynamic", {"preemption": "save-restore", "fpga_time_slice": 2e-3}),
    ("fixed", {"n_partitions": 2}),
    ("variable", {"gc": "compact"}),
    ("overlay", {"resident_names": ["f0"]}),
]


@pytest.mark.parametrize("policy,kw", POLICIES,
                         ids=[f"{p}-{i}" for i, (p, _k) in enumerate(POLICIES)])
class TestInvariantsAcrossPolicies:
    def test_work_conservation(self, policy, kw):
        """Progress-preserving policies deliver exactly the demanded fabric
        time, no matter how it was scheduled."""
        stats, service = run(policy, workload(), **kw)
        demanded = 6 * 3 * 100_000 * CP
        assert stats.total_fpga_exec == pytest.approx(demanded, rel=1e-9)

    def test_task_vs_service_accounting_agree(self, policy, kw):
        stats, service = run(policy, workload(), **kw)
        assert stats.total_fpga_exec == pytest.approx(
            service.metrics.exec_time, rel=1e-9
        )
        assert stats.total_fpga_state == pytest.approx(
            service.metrics.state_time, rel=1e-9
        )
        # Boot-time loads (the overlay's pinned set) are system work, not
        # task work; everything else must match one-for-one.
        boot_loads = len(kw.get("resident_names", []))
        assert stats.n_reconfigs == service.metrics.n_loads - boot_loads

    def test_deterministic_replay(self, policy, kw):
        s1, _ = run(policy, workload(), **kw)
        s2, _ = run(policy, workload(), **kw)
        assert s1.makespan == s2.makespan
        assert s1.mean_turnaround == s2.mean_turnaround
        assert s1.n_reconfigs == s2.n_reconfigs

    def test_makespan_bounds(self, policy, kw):
        """Makespan at least the critical-path lower bound, at most the
        fully serial upper bound (sanity envelope)."""
        stats, service = run(policy, workload(), **kw)
        one_op = 100_000 * CP
        per_task_floor = 3 * one_op  # each task's own ops are serial
        assert stats.makespan >= per_task_floor
        serial_ceiling = (
            stats.total_fpga_exec
            + stats.total_fpga_reconfig
            + stats.total_fpga_state
            + stats.total_cpu_time
            + 1.0  # context switches etc.
        )
        assert stats.makespan <= serial_ceiling


class TestFunctionalIntegrityUnderManagement:
    def test_resident_circuits_stay_correct_after_simulation(self):
        """After a managed run with real compiled circuits, decode the
        device RAM and functionally verify whatever is still resident —
        managed multiplexing must never corrupt a configuration."""
        vf = VirtualFpga("VF12")
        vf.add_circuit(parity_tree(4), effort="greedy", seed=1)
        vf.add_circuit(counter(3), effort="greedy", seed=1)
        vf.add_circuit(parity_tree(6), name="parity6", effort="greedy", seed=1)
        tasks = uniform_workload(vf.circuits, n_tasks=5, ops_per_task=4,
                                 cpu_burst=0.5e-3, cycles=50_000, seed=8)
        vf.simulate(tasks, policy="variable", gc="compact")
        service = vf.last_service
        goldens = {
            "parity4": parity_tree(4),
            "counter3": counter(3),
            "parity6": parity_tree(6),
        }
        assert service.fpga.resident, "expected cached residents after run"
        for handle in service.fpga.resident:
            nl = goldens[handle]
            view = service.fpga.view(handle)
            golden = LogicSimulator(nl)
            names = [c.name for c in nl.primary_inputs]
            import random

            rng = random.Random(5)
            for _ in range(8):
                vec = {n: rng.randint(0, 1) for n in names}
                if nl.state_bits:
                    assert view.step(vec) == golden.step(vec)
                else:
                    assert view.evaluate(vec) == golden.evaluate(vec)

    def test_mixed_policy_registry_reuse(self):
        """One registry drives several simulations back to back; compiled
        bitstreams are immutable so nothing leaks between runs."""
        vf = VirtualFpga("VF12")
        vf.add_circuit(parity_tree(4), effort="greedy", seed=1)
        vf.add_circuit(counter(3), effort="greedy", seed=1)
        results = []
        for policy, kw in [("nonpreemptable", {}), ("variable", {}),
                           ("nonpreemptable", {})]:
            tasks = uniform_workload(vf.circuits, 4, 2, 1e-3, 50_000, seed=2)
            results.append(vf.simulate(tasks, policy=policy, **kw).makespan)
        assert results[0] == results[2]  # same policy, same answer


class TestCrossPolicyOrdering:
    def test_partitioned_never_slower_than_nonpreemptable(self):
        """On a multi-config contention workload, keeping circuits
        resident can only help (modulo tiny scheduling noise)."""
        s_np, _ = run("nonpreemptable", workload())
        s_fx, _ = run("fixed", workload(), n_partitions=2)
        assert s_fx.makespan <= s_np.makespan * 1.05

    def test_merged_is_the_lower_bound(self):
        arch = get_family("VF24")
        reg = ConfigRegistry(arch)
        for i, w in enumerate([3, 4, 5]):
            reg.register_synthetic(f"f{i}", w, arch.height, critical_path=CP)
        sim = Simulator()
        service = make_service("merged", reg)
        kernel = Kernel(sim, RoundRobin(time_slice=1e-3), service)
        kernel.spawn_all(workload())
        merged = kernel.run()
        for policy, kw in [("dynamic", {}), ("variable", {})]:
            stats, _ = run(policy, workload(), **kw)
            assert merged.makespan <= stats.makespan * 1.001
