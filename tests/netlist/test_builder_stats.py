"""NetlistBuilder idioms and netlist statistics tests."""

import pytest

from repro.netlist import (
    CellKind,
    LogicSimulator,
    NetlistBuilder,
    netlist_stats,
    ripple_adder,
    serial_crc,
)


class TestBuilderIdioms:
    def test_fresh_names_unique(self):
        b = NetlistBuilder("t")
        x, y = b.input("x"), b.input("y")
        names = {b.and_(x, y) for _ in range(10)}
        assert len(names) == 10

    def test_reduce_tree_wide_and(self):
        b = NetlistBuilder("t")
        ins = b.input_bus("x", 9)
        b.output("y", b.reduce_tree(CellKind.AND, ins))
        sim = LogicSimulator(b.build())
        assert sim.evaluate(LogicSimulator.pack_bus("x", (1 << 9) - 1, 9))["y"] == 1
        assert sim.evaluate(LogicSimulator.pack_bus("x", (1 << 9) - 2, 9))["y"] == 0

    def test_reduce_tree_single_element(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        assert b.reduce_tree(CellKind.OR, [x]) == x

    def test_reduce_tree_empty_rejected(self):
        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            b.reduce_tree(CellKind.AND, [])

    def test_full_adder_truth(self):
        b = NetlistBuilder("t")
        a, c, ci = b.input("a"), b.input("c"), b.input("ci")
        s, co = b.full_adder(a, c, ci)
        b.output("s", s)
        b.output("co", co)
        sim = LogicSimulator(b.build())
        for x in (0, 1):
            for y in (0, 1):
                for z in (0, 1):
                    out = sim.evaluate({"a": x, "c": y, "ci": z})
                    assert out["s"] + 2 * out["co"] == x + y + z

    def test_ripple_add_width_mismatch(self):
        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            b.ripple_add(b.input_bus("a", 2), b.input_bus("c", 3))

    def test_equals_width_mismatch(self):
        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            b.equals(b.input_bus("a", 2), b.input_bus("c", 3))

    def test_register_bus_init_word(self):
        b = NetlistBuilder("t")
        d = b.input_bus("d", 3)
        q = b.register_bus(d, init=0b101)
        b.output_bus("q", q)
        sim = LogicSimulator(b.build())
        out = sim.step(LogicSimulator.pack_bus("d", 0, 3))
        assert LogicSimulator.unpack_bus(out, "q") == 0b101

    def test_mux_semantics(self):
        b = NetlistBuilder("t")
        s, a, c = b.input("s"), b.input("a"), b.input("c")
        b.output("y", b.mux(s, a, c))
        sim = LogicSimulator(b.build())
        assert sim.evaluate({"s": 0, "a": 1, "c": 0})["y"] == 1
        assert sim.evaluate({"s": 1, "a": 1, "c": 0})["y"] == 0


class TestStats:
    def test_adder_stats(self):
        st = netlist_stats(ripple_adder(4))
        assert st.n_inputs == 9 and st.n_outputs == 5
        assert st.n_ffs == 0
        assert st.depth >= 4  # carries ripple
        assert st.io_count == 14
        assert st.kind_histogram["xor"] > 0

    def test_sequential_stats(self):
        st = netlist_stats(serial_crc(8, 0x07))
        assert st.n_ffs == 8
        assert st.n_inputs == 1 and st.n_outputs == 8

    def test_str_is_informative(self):
        st = netlist_stats(ripple_adder(2))
        text = str(st)
        assert "adder2" in text and "gates" in text and "depth" in text

    def test_gates_exclude_buf_and_io(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        g = b.not_(x)
        buf = b.buf(g)
        b.output("y", buf)
        st = netlist_stats(b.build())
        assert st.n_gates == 1  # only the NOT
        assert st.n_cells == 4
