"""Unit tests for the cell library."""

import pytest

from repro.netlist import Cell, CellKind, evaluate_kind


class TestCellValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Cell("", CellKind.INPUT)

    def test_input_takes_no_fanin(self):
        with pytest.raises(ValueError):
            Cell("x", CellKind.INPUT, ("a",))

    def test_output_needs_exactly_one(self):
        with pytest.raises(ValueError):
            Cell("y", CellKind.OUTPUT)
        with pytest.raises(ValueError):
            Cell("y", CellKind.OUTPUT, ("a", "b"))
        Cell("y", CellKind.OUTPUT, ("a",))  # ok

    def test_and_needs_two(self):
        with pytest.raises(ValueError):
            Cell("g", CellKind.AND, ("a",))
        Cell("g", CellKind.AND, ("a", "b", "c"))  # n-ary ok

    def test_mux_needs_three(self):
        with pytest.raises(ValueError):
            Cell("m", CellKind.MUX, ("s", "a"))

    def test_dff_single_input(self):
        with pytest.raises(ValueError):
            Cell("q", CellKind.DFF, ("d", "e"))

    def test_lut_truth_range(self):
        Cell("l", CellKind.LUT, ("a", "b"), truth=0b1001)
        with pytest.raises(ValueError):
            Cell("l", CellKind.LUT, ("a", "b"), truth=1 << 4)

    def test_truth_only_on_lut(self):
        with pytest.raises(ValueError):
            Cell("g", CellKind.AND, ("a", "b"), truth=3)

    def test_init_only_on_dff(self):
        Cell("q", CellKind.DFF, ("d",), init=1)
        with pytest.raises(ValueError):
            Cell("g", CellKind.AND, ("a", "b"), init=1)
        with pytest.raises(ValueError):
            Cell("q", CellKind.DFF, ("d",), init=2)

    def test_fanin_normalised_to_tuple(self):
        c = Cell("g", CellKind.AND, ["a", "b"])
        assert c.fanin == ("a", "b")

    def test_is_flags(self):
        assert Cell("g", CellKind.XOR, ("a", "b")).is_combinational
        assert not Cell("q", CellKind.DFF, ("d",)).is_combinational
        assert Cell("q", CellKind.DFF, ("d",)).is_state


class TestEvaluateKind:
    @pytest.mark.parametrize(
        "kind,values,expect",
        [
            (CellKind.BUF, (0,), 0),
            (CellKind.BUF, (1,), 1),
            (CellKind.NOT, (0,), 1),
            (CellKind.NOT, (1,), 0),
            (CellKind.AND, (1, 1, 1), 1),
            (CellKind.AND, (1, 0, 1), 0),
            (CellKind.OR, (0, 0), 0),
            (CellKind.OR, (0, 1), 1),
            (CellKind.NAND, (1, 1), 0),
            (CellKind.NOR, (0, 0), 1),
            (CellKind.XOR, (1, 1, 1), 1),
            (CellKind.XOR, (1, 1), 0),
            (CellKind.XNOR, (1, 0), 0),
            (CellKind.CONST0, (), 0),
            (CellKind.CONST1, (), 1),
        ],
    )
    def test_gates(self, kind, values, expect):
        assert evaluate_kind(kind, values) == expect

    def test_mux_selects(self):
        # fanin = (sel, a, b): b when sel else a
        assert evaluate_kind(CellKind.MUX, (0, 0, 1)) == 0
        assert evaluate_kind(CellKind.MUX, (1, 0, 1)) == 1

    def test_lut_indexing_lsb_first(self):
        # truth bit i corresponds to pattern i with fanin[0] as LSB.
        truth = 0b0110  # XOR of two inputs
        assert evaluate_kind(CellKind.LUT, (0, 0), truth) == 0
        assert evaluate_kind(CellKind.LUT, (1, 0), truth) == 1
        assert evaluate_kind(CellKind.LUT, (0, 1), truth) == 1
        assert evaluate_kind(CellKind.LUT, (1, 1), truth) == 0

    def test_dff_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate_kind(CellKind.DFF, (1,))

    def test_input_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate_kind(CellKind.INPUT, ())
