"""Generator tests: every circuit is checked against a software reference
model over exhaustive or randomized stimulus."""

import random

import pytest

from repro.netlist import (
    CIRCUIT_GENERATORS,
    LogicSimulator,
    accumulator,
    alu,
    array_multiplier,
    comparator,
    counter,
    lfsr,
    moore_fsm,
    moving_sum_fir,
    netlist_stats,
    parity_tree,
    random_logic,
    ripple_adder,
    serial_crc,
    shift_register,
)

rng = random.Random(20260707)


def bus(prefix, value, width):
    return LogicSimulator.pack_bus(prefix, value, width)


class TestAdder:
    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_against_integer_addition(self, width):
        sim = LogicSimulator(ripple_adder(width))
        cases = (
            [
                (a, b, c)
                for a in range(1 << width)
                for b in range(1 << width)
                for c in (0, 1)
            ]
            if width <= 2
            else [
                (rng.randrange(1 << width), rng.randrange(1 << width), rng.randint(0, 1))
                for _ in range(40)
            ]
        )
        for a, b_, c in cases:
            out = sim.evaluate({**bus("a", a, width), **bus("b", b_, width), "cin": c})
            got = LogicSimulator.unpack_bus(out, "s") | (out["cout"] << width)
            assert got == a + b_ + c

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ripple_adder(0)


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 4])
    def test_against_integer_multiplication(self, width):
        sim = LogicSimulator(array_multiplier(width))
        for a in range(1 << width):
            for b_ in range(1 << width):
                out = sim.evaluate({**bus("a", a, width), **bus("b", b_, width)})
                assert LogicSimulator.unpack_bus(out, "p") == a * b_, (a, b_)

    def test_is_large(self):
        # The multiplier is the "big circuit" of the experiments: it must
        # dominate the adder in gate count.
        s8 = netlist_stats(array_multiplier(8))
        a8 = netlist_stats(ripple_adder(8))
        assert s8.n_gates > 4 * a8.n_gates


class TestComparator:
    @pytest.mark.parametrize("width", [1, 4])
    def test_eq_lt(self, width):
        sim = LogicSimulator(comparator(width))
        for a in range(1 << width):
            for b_ in range(1 << width):
                out = sim.evaluate({**bus("a", a, width), **bus("b", b_, width)})
                assert out["eq"] == int(a == b_)
                assert out["lt"] == int(a < b_)


class TestParity:
    def test_matches_bitcount(self):
        width = 9
        sim = LogicSimulator(parity_tree(width))
        for _ in range(50):
            v = rng.randrange(1 << width)
            out = sim.evaluate(bus("d", v, width))
            assert out["p"] == bin(v).count("1") % 2


class TestAlu:
    def test_all_ops(self):
        width = 4
        sim = LogicSimulator(alu(width))
        mask = (1 << width) - 1
        ops = {0: lambda a, b: (a + b) & mask, 1: lambda a, b: a & b,
               2: lambda a, b: a | b, 3: lambda a, b: a ^ b}
        for op, fn in ops.items():
            for _ in range(20):
                a, b_ = rng.randrange(1 << width), rng.randrange(1 << width)
                out = sim.evaluate(
                    {**bus("a", a, width), **bus("b", b_, width), **bus("op", op, 2)}
                )
                assert LogicSimulator.unpack_bus(out, "y") == fn(a, b_), (op, a, b_)


class TestRandomLogic:
    def test_reproducible(self):
        n1 = random_logic(50, 8, 4, seed=7)
        n2 = random_logic(50, 8, 4, seed=7)
        assert [c.name for c in n1.cells.values()] == [c.name for c in n2.cells.values()]
        assert [c.fanin for c in n1.cells.values()] == [c.fanin for c in n2.cells.values()]

    def test_different_seeds_differ(self):
        n1 = random_logic(50, 8, 4, seed=1)
        n2 = random_logic(50, 8, 4, seed=2)
        assert [c.fanin for c in n1.cells.values()] != [c.fanin for c in n2.cells.values()]

    def test_valid_and_sized(self):
        nl = random_logic(200, 16, 8, seed=3)
        nl.validate()
        st = netlist_stats(nl)
        assert st.n_gates == 200
        assert st.n_inputs == 16 and st.n_outputs == 8


class TestCounter:
    def test_counts_with_enable(self):
        width = 4
        sim = LogicSimulator(counter(width))
        expect = 0
        for en in (1, 1, 0, 1, 1, 1, 0, 0, 1):
            out = sim.step({"en": en})
            assert LogicSimulator.unpack_bus(out, "q") == expect
            expect = (expect + en) % (1 << width)

    def test_wraps(self):
        sim = LogicSimulator(counter(2))
        vals = [LogicSimulator.unpack_bus(sim.step({"en": 1}), "q") for _ in range(6)]
        assert vals == [0, 1, 2, 3, 0, 1]


class TestLfsr:
    def test_nonzero_and_periodic(self):
        sim = LogicSimulator(lfsr(4, taps=(3, 2)))  # x^4+x^3+1: maximal
        seen = []
        for _ in range(20):
            out = sim.step({})
            seen.append(LogicSimulator.unpack_bus(out, "q"))
        assert all(v != 0 for v in seen[1:])
        assert len(set(seen)) == 15  # maximal length sequence

    def test_bad_taps_rejected(self):
        with pytest.raises(ValueError):
            lfsr(4, taps=(9, 0))


class TestShiftRegister:
    def test_shifts(self):
        sim = LogicSimulator(shift_register(3))
        stream = [1, 0, 1, 1, 0]
        outs = [LogicSimulator.unpack_bus(sim.step({"din": v}), "q") for v in stream]
        # After k steps, q contains the last bits shifted in.
        assert outs[-1] & 1 == stream[-2]  # q[0] is the most recent *latched* bit


class TestSerialCrc:
    @staticmethod
    def crc_reference(bits, width, poly):
        """Software model with the same recurrence as the hardware."""
        reg = 0
        for bit in bits:
            fb = bit ^ ((reg >> (width - 1)) & 1)
            reg = (reg << 1) & ((1 << width) - 1)
            if fb:
                reg ^= poly | 1  # bit 0 always receives the feedback
        return reg

    @pytest.mark.parametrize("width,poly", [(4, 0x3), (8, 0x07)])
    def test_matches_reference(self, width, poly):
        sim = LogicSimulator(serial_crc(width, poly))
        bits = [rng.randint(0, 1) for _ in range(64)]
        for bit in bits:
            sim.step({"din": bit})
        got = LogicSimulator.unpack_bus(sim.evaluate({"din": 0}), "crc")
        assert got == self.crc_reference(bits, width, poly)

    def test_poly_validation(self):
        with pytest.raises(ValueError):
            serial_crc(4, 0)
        with pytest.raises(ValueError):
            serial_crc(4, 1 << 4)


class TestAccumulator:
    def test_accumulates_mod_2w(self):
        width = 5
        sim = LogicSimulator(accumulator(width))
        total = 0
        for _ in range(30):
            d = rng.randrange(1 << width)
            out = sim.step(bus("d", d, width))
            assert LogicSimulator.unpack_bus(out, "acc") == total
            total = (total + d) % (1 << width)


class TestMooreFsm:
    def test_deterministic_and_stateful(self):
        fsm = moore_fsm(8, 2, seed=11)
        assert fsm.state_bits == 3
        s1, s2 = LogicSimulator(fsm), LogicSimulator(moore_fsm(8, 2, seed=11))
        stim = [{"x[0]": rng.randint(0, 1), "x[1]": rng.randint(0, 1)} for _ in range(40)]
        assert s1.run(stim) == s2.run(stim)

    def test_state_restore_equivalence(self):
        fsm = moore_fsm(16, 2, seed=5)
        sim = LogicSimulator(fsm)
        stim = [{"x[0]": rng.randint(0, 1), "x[1]": rng.randint(0, 1)} for _ in range(10)]
        sim.run(stim)
        snap = sim.read_state()
        tail = [{"x[0]": rng.randint(0, 1), "x[1]": rng.randint(0, 1)} for _ in range(10)]
        ref_out = sim.run(tail)
        sim.write_state(snap)
        assert sim.run(tail) == ref_out


class TestFir:
    def test_moving_sum(self):
        n_taps, width = 4, 3
        sim = LogicSimulator(moving_sum_fir(n_taps, width))
        samples = [rng.randrange(1 << width) for _ in range(20)]
        window: list[int] = []
        for x in samples:
            out = sim.step(bus("d", x, width))
            expect = sum(window[-(n_taps - 1):]) + x
            assert LogicSimulator.unpack_bus(out, "y") == expect
            window.append(x)


class TestRegistry:
    def test_all_registered_generators_build_valid_netlists(self):
        samples = {
            "barrel_shifter": (4,),
            "priority_encoder": (4,),
            "gray_counter": (3,),
            "kogge_stone_adder": (4,),
            "johnson_counter": (3,),
            "ripple_adder": (4,),
            "array_multiplier": (3,),
            "comparator": (3,),
            "parity_tree": (5,),
            "alu": (3,),
            "random_logic": (30, 6, 3, 1),
            "counter": (4,),
            "lfsr": (5,),
            "shift_register": (6,),
            "serial_crc": (8, 0x07),
            "accumulator": (4,),
            "moore_fsm": (4, 2, 9),
            "moving_sum_fir": (3, 3),
        }
        assert set(samples) == set(CIRCUIT_GENERATORS)
        for name, args in samples.items():
            nl = CIRCUIT_GENERATORS[name](*args)
            nl.validate()
            assert len(nl) > 0
