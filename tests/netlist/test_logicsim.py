"""Unit tests for the logic simulator, including state save/restore."""

import pytest

from repro.netlist import (
    Cell,
    CellKind,
    LogicSimulator,
    Netlist,
    NetlistBuilder,
)


def toggle_ff():
    nl = Netlist("toggle")
    nl.add(Cell("q", CellKind.DFF, ("n",)))
    nl.add(Cell("n", CellKind.NOT, ("q",)))
    nl.add(Cell("y", CellKind.OUTPUT, ("q",)))
    return nl


class TestCombinational:
    def test_and_gate(self):
        b = NetlistBuilder("and2")
        b.output("y", b.and_(b.input("a"), b.input("c")))
        sim = LogicSimulator(b.build())
        for a in (0, 1):
            for c in (0, 1):
                assert sim.evaluate({"a": a, "c": c})["y"] == (a & c)

    def test_missing_input_raises(self):
        b = NetlistBuilder("nl")
        b.output("y", b.not_(b.input("a")))
        sim = LogicSimulator(b.build())
        with pytest.raises(KeyError, match="a"):
            sim.evaluate({})

    def test_evaluate_does_not_advance_state(self):
        sim = LogicSimulator(toggle_ff())
        before = sim.read_state()
        sim.evaluate({})
        assert sim.read_state() == before

    def test_input_values_masked_to_bit(self):
        b = NetlistBuilder("nl")
        b.output("y", b.buf(b.input("a")))
        sim = LogicSimulator(b.build())
        assert sim.evaluate({"a": 3}) == {"y": 1}


class TestSequential:
    def test_toggle_sequence(self):
        sim = LogicSimulator(toggle_ff())
        outs = [sim.step({})["y"] for _ in range(4)]
        assert outs == [0, 1, 0, 1]

    def test_dff_init_value(self):
        nl = Netlist("init1")
        nl.add(Cell("q", CellKind.DFF, ("q",), init=1))
        nl.add(Cell("y", CellKind.OUTPUT, ("q",)))
        sim = LogicSimulator(nl)
        assert sim.step({})["y"] == 1

    def test_run_stimulus(self):
        b = NetlistBuilder("sr")
        d = b.input("din")
        q = b.dff(d)
        b.output("y", q)
        sim = LogicSimulator(b.build())
        outs = sim.run([{"din": v} for v in (1, 0, 1, 1)])
        assert [o["y"] for o in outs] == [0, 1, 0, 1]  # one-cycle delay

    def test_simultaneous_latch(self):
        # Two DFFs swapping values must not race.
        nl = Netlist("swap")
        nl.add(Cell("q0", CellKind.DFF, ("q1",), init=0))
        nl.add(Cell("q1", CellKind.DFF, ("q0",), init=1))
        nl.add(Cell("y0", CellKind.OUTPUT, ("q0",)))
        nl.add(Cell("y1", CellKind.OUTPUT, ("q1",)))
        sim = LogicSimulator(nl)
        out = sim.step({})
        assert (out["y0"], out["y1"]) == (0, 1)
        assert sim.read_state() == {"q0": 1, "q1": 0}
        sim.step({})
        assert sim.read_state() == {"q0": 0, "q1": 1}


class TestStateAccess:
    def test_read_returns_copy(self):
        sim = LogicSimulator(toggle_ff())
        snap = sim.read_state()
        snap["q"] = 99
        assert sim.state["q"] in (0, 1)

    def test_write_state_restores(self):
        sim = LogicSimulator(toggle_ff())
        sim.step({})
        snap = sim.read_state()
        sim.step({})
        sim.step({})
        sim.write_state(snap)
        assert sim.read_state() == snap

    def test_write_unknown_bit_raises(self):
        sim = LogicSimulator(toggle_ff())
        with pytest.raises(KeyError):
            sim.write_state({"ghost": 1})

    def test_write_non_bit_raises(self):
        sim = LogicSimulator(toggle_ff())
        with pytest.raises(ValueError):
            sim.write_state({"q": 2})

    def test_reset_restores_init(self):
        nl = Netlist("init1")
        nl.add(Cell("q", CellKind.DFF, ("q",), init=1))
        nl.add(Cell("y", CellKind.OUTPUT, ("q",)))
        sim = LogicSimulator(nl)
        sim.write_state({"q": 0})
        sim.reset()
        assert sim.read_state() == {"q": 1}

    def test_preemption_scenario(self):
        """Save state, run other work, restore, and continue identically —
        the exact mechanism the paper requires of preemptable sequential
        circuits (§3)."""
        from repro.netlist import counter

        ref = LogicSimulator(counter(4))
        dut = LogicSimulator(counter(4))
        for _ in range(5):
            ref.step({"en": 1})
            dut.step({"en": 1})
        snapshot = dut.read_state()
        # "Preempt": clobber the device with someone else's state.
        dut.write_state({k: 0 for k in snapshot})
        dut.step({"en": 1})
        # Restore and resume.
        dut.write_state(snapshot)
        for _ in range(3):
            ref.step({"en": 1})
            dut.step({"en": 1})
        assert dut.read_state() == ref.read_state()


class TestBusHelpers:
    def test_pack_unpack_roundtrip(self):
        packed = LogicSimulator.pack_bus("a", 0b1011, 4)
        assert packed == {"a[0]": 1, "a[1]": 1, "a[2]": 0, "a[3]": 1}
        assert LogicSimulator.unpack_bus(packed, "a") == 0b1011

    def test_unpack_ignores_other_prefixes(self):
        outs = {"s[0]": 1, "s[1]": 0, "cout": 1}
        assert LogicSimulator.unpack_bus(outs, "s") == 1
