"""Unit tests for the Netlist container."""

import pytest

from repro.netlist import Cell, CellKind, Netlist, NetlistBuilder, NetlistError


def tiny():
    """a AND b -> y, plus one DFF loop."""
    nl = Netlist("tiny")
    nl.add(Cell("a", CellKind.INPUT))
    nl.add(Cell("b", CellKind.INPUT))
    nl.add(Cell("g", CellKind.AND, ("a", "b")))
    nl.add(Cell("y", CellKind.OUTPUT, ("g",)))
    nl.add(Cell("q", CellKind.DFF, ("g",)))
    return nl


class TestConstruction:
    def test_duplicate_name_rejected(self):
        nl = tiny()
        with pytest.raises(NetlistError):
            nl.add(Cell("g", CellKind.OR, ("a", "b")))

    def test_replace_requires_existing(self):
        nl = tiny()
        nl.replace(Cell("g", CellKind.OR, ("a", "b")))
        assert nl["g"].kind is CellKind.OR
        with pytest.raises(NetlistError):
            nl.replace(Cell("zzz", CellKind.OR, ("a", "b")))

    def test_contains_len_getitem(self):
        nl = tiny()
        assert "g" in nl and "zzz" not in nl
        assert len(nl) == 5
        assert nl["a"].kind is CellKind.INPUT

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Netlist("")


class TestQueries:
    def test_io_lists(self):
        nl = tiny()
        assert [c.name for c in nl.primary_inputs] == ["a", "b"]
        assert [c.name for c in nl.primary_outputs] == ["y"]
        assert nl.io_count == 3

    def test_state_bits(self):
        assert tiny().state_bits == 1

    def test_fanout(self):
        nl = tiny()
        assert sorted(nl.fanout("g")) == ["q", "y"]
        assert nl.fanout("y") == []

    def test_fanout_invalidated_by_add(self):
        nl = tiny()
        nl.fanout("g")
        nl.add(Cell("h", CellKind.NOT, ("g",)))
        assert "h" in nl.fanout("g")


class TestValidation:
    def test_dangling_fanin(self):
        nl = Netlist("bad")
        nl.add(Cell("g", CellKind.NOT, ("ghost",)))
        with pytest.raises(NetlistError, match="undefined net"):
            nl.validate()

    def test_reading_primary_output_rejected(self):
        nl = tiny()
        nl.add(Cell("h", CellKind.NOT, ("y",)))
        with pytest.raises(NetlistError, match="primary output"):
            nl.validate()

    def test_combinational_cycle_detected(self):
        nl = Netlist("loop")
        nl.add(Cell("a", CellKind.INPUT))
        nl.add(Cell("g1", CellKind.AND, ("a", "g2")))
        nl.add(Cell("g2", CellKind.AND, ("a", "g1")))
        with pytest.raises(NetlistError, match="cycle"):
            nl.validate()

    def test_cycle_through_dff_is_legal(self):
        nl = Netlist("seq")
        nl.add(Cell("q", CellKind.DFF, ("n",)))
        nl.add(Cell("n", CellKind.NOT, ("q",)))
        nl.add(Cell("y", CellKind.OUTPUT, ("q",)))
        nl.validate()  # toggle flip-flop: legal


class TestTopoAndDepth:
    def test_topo_respects_dependencies(self):
        nl = tiny()
        order = [c.name for c in nl.topo_order()]
        assert order.index("a") < order.index("g") < order.index("y")

    def test_depth_chain(self):
        b = NetlistBuilder("chain")
        x = b.input("x")
        for _ in range(7):
            x = b.not_(x)
        b.output("y", x)
        assert b.build().logic_depth() == 7

    def test_depth_ignores_registers(self):
        nl = Netlist("seq")
        nl.add(Cell("q", CellKind.DFF, ("n",)))
        nl.add(Cell("n", CellKind.NOT, ("q",)))
        nl.add(Cell("y", CellKind.OUTPUT, ("q",)))
        assert nl.logic_depth() == 1

    def test_all_fanin_from_dffs(self):
        nl = Netlist("sdff")
        nl.add(Cell("q1", CellKind.DFF, ("g",)))
        nl.add(Cell("q2", CellKind.DFF, ("g",)))
        nl.add(Cell("g", CellKind.AND, ("q1", "q2")))
        nl.add(Cell("y", CellKind.OUTPUT, ("g",)))
        nl.validate()


class TestSubcircuit:
    def test_cut_inputs_and_outputs_created(self):
        b = NetlistBuilder("big")
        a, c = b.input("a"), b.input("c")
        g1 = b.and_(a, c, name="g1")
        g2 = b.not_(g1, name="g2")
        b.output("y", g2)
        nl = b.build()

        sub = nl.subcircuit(["g2"], "part")
        assert "g1" in sub  # cut fanin becomes an INPUT
        assert sub["g1"].kind is CellKind.INPUT
        assert "g2__cut_out" in sub
        assert sub["g2__cut_out"].kind is CellKind.OUTPUT

    def test_unknown_cell_rejected(self):
        with pytest.raises(NetlistError):
            tiny().subcircuit(["nope"], "part")

    def test_no_cut_output_when_fully_internal(self):
        b = NetlistBuilder("big")
        a = b.input("a")
        g1 = b.not_(a, name="g1")
        g2 = b.not_(g1, name="g2")
        b.output("y", g2)
        nl = b.build()
        sub = nl.subcircuit(["g1", "g2", "y"], "part")
        # g2 only feeds y which is inside: no synthetic output needed
        assert "g2__cut_out" not in sub


class TestMerge:
    def test_merged_is_disjoint_union(self):
        b1 = NetlistBuilder("c1")
        b1.output("y", b1.not_(b1.input("a")))
        b2 = NetlistBuilder("c2")
        b2.output("y", b2.buf(b2.input("a")))
        merged = b1.build().merged_with(b2.build(), "both")
        assert "c1.a" in merged and "c2.a" in merged
        assert len(merged) == 6
        assert len(merged.primary_outputs) == 2
