"""Reference-model tests for the extended generator set."""

import random

import pytest

from repro.netlist import (
    LogicSimulator,
    barrel_shifter,
    gray_counter,
    johnson_counter,
    priority_encoder,
)

rng = random.Random(424242)


class TestBarrelShifter:
    @pytest.mark.parametrize("width", [2, 4, 7, 8])
    def test_matches_integer_shift(self, width):
        sim = LogicSimulator(barrel_shifter(width))
        n_sel = (width - 1).bit_length()
        mask = (1 << width) - 1
        for _ in range(40):
            d = rng.randrange(1 << width)
            s = rng.randrange(1 << n_sel)
            out = sim.evaluate({
                **LogicSimulator.pack_bus("d", d, width),
                **LogicSimulator.pack_bus("s", s, n_sel),
            })
            assert LogicSimulator.unpack_bus(out, "y") == (d << s) & mask

    def test_width_validation(self):
        with pytest.raises(ValueError):
            barrel_shifter(1)


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 5, 8])
    def test_exhaustive(self, width):
        sim = LogicSimulator(priority_encoder(width))
        for d in range(1 << width):
            out = sim.evaluate(LogicSimulator.pack_bus("d", d, width))
            if d == 0:
                assert out["valid"] == 0
            else:
                assert out["valid"] == 1
                assert LogicSimulator.unpack_bus(out, "q") == d.bit_length() - 1


class TestGrayCounter:
    def test_one_bit_transitions(self):
        width = 4
        sim = LogicSimulator(gray_counter(width))
        prev = None
        seen = []
        for _ in range(1 << width):
            out = sim.step({"en": 1})
            g = LogicSimulator.unpack_bus(out, "g")
            if prev is not None:
                assert bin(prev ^ g).count("1") == 1
            prev = g
            seen.append(g)
        # Full Gray cycle visits every code exactly once.
        assert len(set(seen)) == 1 << width

    def test_matches_binary_to_gray(self):
        width = 5
        sim = LogicSimulator(gray_counter(width))
        for n in range(20):
            out = sim.step({"en": 1})
            assert LogicSimulator.unpack_bus(out, "g") == n ^ (n >> 1)

    def test_enable_freezes(self):
        sim = LogicSimulator(gray_counter(3))
        sim.step({"en": 1})
        a = LogicSimulator.unpack_bus(sim.step({"en": 0}), "g")
        b = LogicSimulator.unpack_bus(sim.step({"en": 0}), "g")
        assert a == b


class TestJohnsonCounter:
    def test_period_is_2n(self):
        width = 4
        sim = LogicSimulator(johnson_counter(width))
        states = []
        for _ in range(2 * width + 1):
            out = sim.step({})
            states.append(LogicSimulator.unpack_bus(out, "q"))
        assert states[0] == states[2 * width]  # period 2N
        assert len(set(states[: 2 * width])) == 2 * width

    def test_one_bit_transitions(self):
        width = 5
        sim = LogicSimulator(johnson_counter(width))
        prev = None
        for _ in range(2 * width):
            q = LogicSimulator.unpack_bus(sim.step({}), "q")
            if prev is not None:
                assert bin(prev ^ q).count("1") == 1
            prev = q


class TestRegistryComplete:
    def test_new_generators_registered(self):
        from repro.netlist import CIRCUIT_GENERATORS

        for name in ("barrel_shifter", "priority_encoder", "gray_counter",
                     "johnson_counter"):
            assert name in CIRCUIT_GENERATORS


class TestCompileNewGenerators:
    @pytest.mark.parametrize("factory", [
        lambda: barrel_shifter(4),
        lambda: priority_encoder(5),
        lambda: gray_counter(4),
        lambda: johnson_counter(4),
    ], ids=["bshift", "prienc", "gray", "johnson"])
    def test_full_stack(self, factory):
        from repro.cad import compile_netlist, verify_bitstream
        from repro.device import get_family

        arch = get_family("VF10")
        nl = factory()
        res = compile_netlist(nl, arch, seed=2, effort="greedy")
        verify_bitstream(nl, res.bitstream, arch, seed=6)


class TestKoggeStone:
    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_matches_integer_addition(self, width):
        from repro.netlist import kogge_stone_adder

        sim = LogicSimulator(kogge_stone_adder(width))
        for _ in range(50):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            c = rng.randint(0, 1)
            out = sim.evaluate({
                **LogicSimulator.pack_bus("a", a, width),
                **LogicSimulator.pack_bus("b", b, width),
                "cin": c,
            })
            got = LogicSimulator.unpack_bus(out, "s") | (out["cout"] << width)
            assert got == a + b + c

    def test_logarithmic_depth(self):
        from repro.netlist import kogge_stone_adder, netlist_stats, ripple_adder

        ks = netlist_stats(kogge_stone_adder(8)).depth
        rc = netlist_stats(ripple_adder(8)).depth
        assert ks < rc  # parallel prefix beats the ripple chain

    def test_mapped_lut_depth_beats_ripple(self):
        """After K-LUT mapping the prefix adder is still much shallower.
        (Post-route critical paths are noisy on this small fabric: the
        prefix tree's extra wiring can eat the depth win — so the honest
        deterministic comparison is at the mapped-netlist level.)"""
        from repro.cad import technology_map
        from repro.netlist import kogge_stone_adder, ripple_adder

        ks = technology_map(kogge_stone_adder(8), k=4).logic_depth()
        rc = technology_map(ripple_adder(8), k=4).logic_depth()
        assert ks < rc

    def test_full_stack_verify(self):
        from repro.cad import compile_netlist, verify_bitstream
        from repro.device import get_family
        from repro.netlist import kogge_stone_adder

        arch = get_family("VF10")
        nl = kogge_stone_adder(4)
        res = compile_netlist(nl, arch, seed=2, effort="greedy")
        verify_bitstream(nl, res.bitstream, arch, seed=6)
