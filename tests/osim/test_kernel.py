"""Kernel behaviour tests with the null FPGA service and a mock service."""

import pytest

from repro.osim import (
    CpuBurst,
    DeadlockError,
    Fifo,
    FpgaOp,
    FpgaService,
    Kernel,
    NullFpgaService,
    PriorityScheduler,
    RoundRobin,
    SyscallError,
    Task,
    TaskState,
)
from repro.sim import Simulator


def make_kernel(scheduler=None, service=None, cs=0.0):
    sim = Simulator()
    kernel = Kernel(
        sim,
        RoundRobin(time_slice=1.0) if scheduler is None else scheduler,
        NullFpgaService() if service is None else service,
        context_switch=cs,
    )
    return sim, kernel


class DelayService(FpgaService):
    """Executes every op in a fixed time; records the order."""

    def __init__(self, delay=5.0):
        self.delay = delay
        self.log = []

    def execute(self, task, op):
        self.log.append((self.kernel.sim.now, task.name, op.config))
        yield self.kernel.sim.timeout(self.delay)
        task.accounting.fpga_exec_time += self.delay


class TestCpuScheduling:
    def test_single_task_runs_to_completion(self):
        sim, kernel = make_kernel()
        t = kernel.spawn(Task("t", [CpuBurst(3.0)]))
        stats = kernel.run()
        assert t.state is TaskState.DONE
        assert stats.total_cpu_time == pytest.approx(3.0)
        assert stats.makespan == pytest.approx(3.0)

    def test_round_robin_interleaves(self):
        sim, kernel = make_kernel(RoundRobin(time_slice=1.0))
        a = kernel.spawn(Task("a", [CpuBurst(2.0)]))
        b = kernel.spawn(Task("b", [CpuBurst(2.0)]))
        kernel.run()
        # Time-shared: both finish near the end, a one slice before b.
        assert a.accounting.completion == pytest.approx(3.0)
        assert b.accounting.completion == pytest.approx(4.0)

    def test_fifo_runs_whole_bursts(self):
        sim, kernel = make_kernel(Fifo())
        a = kernel.spawn(Task("a", [CpuBurst(2.0)]))
        b = kernel.spawn(Task("b", [CpuBurst(2.0)]))
        kernel.run()
        assert a.accounting.completion == pytest.approx(2.0)
        assert b.accounting.completion == pytest.approx(4.0)

    def test_priority_scheduler_prefers_low_value(self):
        sim, kernel = make_kernel(PriorityScheduler(time_slice=10.0))
        low = Task("low", [CpuBurst(1.0)], priority=5, arrival=0.0)
        high = Task("high", [CpuBurst(1.0)], priority=0, arrival=0.0)
        kernel.spawn(low)
        kernel.spawn(high)
        kernel.run()
        assert high.accounting.completion < low.accounting.completion

    def test_context_switch_charged(self):
        sim, kernel = make_kernel(cs=0.5)
        kernel.spawn(Task("t", [CpuBurst(1.0)]))
        stats = kernel.run()
        assert stats.makespan == pytest.approx(1.5)
        assert kernel.total_context_switches == 1

    def test_arrival_times_respected(self):
        sim, kernel = make_kernel()
        t = kernel.spawn(Task("late", [CpuBurst(1.0)], arrival=10.0))
        kernel.run()
        assert t.accounting.first_dispatch == pytest.approx(10.0)

    def test_ready_wait_accounted(self):
        sim, kernel = make_kernel(Fifo())
        kernel.spawn(Task("a", [CpuBurst(4.0)]))
        b = kernel.spawn(Task("b", [CpuBurst(1.0)]))
        kernel.run()
        assert b.accounting.ready_wait_time == pytest.approx(4.0)


class TestFpgaInteraction:
    def test_cpu_free_during_fpga_op(self):
        svc = DelayService(delay=10.0)
        sim, kernel = make_kernel(service=svc)
        a = kernel.spawn(Task("a", [FpgaOp("c", 1), CpuBurst(1.0)]))
        b = kernel.spawn(Task("b", [CpuBurst(5.0)]))
        kernel.run()
        # b's CPU work overlaps a's FPGA op completely.
        assert b.accounting.completion == pytest.approx(5.0)
        assert a.accounting.completion == pytest.approx(11.0)

    def test_undeclared_config_raises(self):
        sim, kernel = make_kernel()
        t = Task("t", [FpgaOp("c", 1)])
        t.configs = []  # simulate a missing declaration
        kernel.spawn(t)
        with pytest.raises(SyscallError):
            kernel.run()

    def test_fpga_op_count(self):
        svc = DelayService(delay=1.0)
        sim, kernel = make_kernel(service=svc)
        t = kernel.spawn(Task("t", [FpgaOp("c", 1), FpgaOp("c", 1)]))
        stats = kernel.run()
        assert t.accounting.n_fpga_ops == 2
        assert stats.total_fpga_exec == pytest.approx(2.0)

    def test_service_sees_requests_in_order(self):
        svc = DelayService(delay=1.0)
        sim, kernel = make_kernel(service=svc)
        kernel.spawn(Task("a", [FpgaOp("x", 1)]))
        kernel.spawn(Task("b", [FpgaOp("y", 1)]))
        kernel.run()
        assert [(name, cfg) for _, name, cfg in svc.log] == [
            ("a", "x"), ("b", "y"),
        ]

    def test_task_ending_with_fpga_op(self):
        svc = DelayService(delay=2.0)
        sim, kernel = make_kernel(service=svc)
        t = kernel.spawn(Task("t", [FpgaOp("c", 1)]))
        kernel.run()
        assert t.state is TaskState.DONE
        assert t.accounting.completion == pytest.approx(2.0)


class TestLifecycle:
    def test_zero_tasks_run_cleanly(self):
        """Regression: an empty kernel must report a zero makespan, not
        crash on ``min()`` of no arrivals."""
        sim, kernel = make_kernel()
        stats = kernel.run()
        assert stats.makespan == 0.0
        assert stats.n_tasks == 0
        assert kernel.stats().makespan == 0.0

    def test_double_spawn_rejected(self):
        sim, kernel = make_kernel()
        t = Task("t", [CpuBurst(1.0)])
        kernel.spawn(t)
        with pytest.raises(ValueError):
            kernel.spawn(t)

    def test_deadlock_detection(self):
        class StuckService(FpgaService):
            def execute(self, task, op):
                yield self.kernel.sim.event()  # never triggers

        sim, kernel = make_kernel(service=StuckService())
        kernel.spawn(Task("t", [FpgaOp("c", 1)]))
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_trace_records_lifecycle(self):
        sim, kernel = make_kernel()
        kernel.spawn(Task("t", [CpuBurst(1.0)]))
        kernel.run()
        kinds = [e.kind for e in kernel.trace.events]
        assert kinds[0] == "admit"
        assert "dispatch" in kinds
        assert kinds[-1] == "done"

    def test_stats_require_completion(self):
        sim, kernel = make_kernel()
        kernel.spawn(Task("t", [CpuBurst(5.0)]))
        sim.run(until=1.0)
        with pytest.raises(ValueError):
            kernel.stats()


class TestWorkloads:
    def test_uniform_workload_shapes(self):
        from repro.osim import uniform_workload

        tasks = uniform_workload(["a", "b"], n_tasks=4, ops_per_task=3,
                                 cpu_burst=0.1, cycles=10, seed=1)
        assert len(tasks) == 4
        assert tasks[0].configs == ["a"]
        assert tasks[1].configs == ["b"]
        assert all(len(t.fpga_ops) == 3 for t in tasks)

    def test_zipf_workload_skewed(self):
        from collections import Counter

        from repro.osim import zipf_workload

        tasks = zipf_workload([f"c{i}" for i in range(8)], n_tasks=10,
                              ops_per_task=20, cpu_burst=0.1, cycles=10,
                              seed=3, s=1.5)
        counts = Counter(
            op.config for t in tasks for op in t.fpga_ops
        )
        assert counts["c0"] > counts.get("c7", 0) * 2

    def test_workloads_deterministic(self):
        from repro.osim import zipf_workload

        t1 = zipf_workload(["a", "b", "c"], 5, 10, 0.1, 10, seed=9)
        t2 = zipf_workload(["a", "b", "c"], 5, 10, 0.1, 10, seed=9)
        assert [
            [op.config for op in t.fpga_ops] for t in t1
        ] == [[op.config for op in t.fpga_ops] for t in t2]

    def test_bursty_arrivals(self):
        from repro.osim import bursty_arrivals, uniform_workload

        tasks = uniform_workload(["a"], 6, 1, 0.1, 10)
        tasks = bursty_arrivals(tasks, burst_gap=5.0, burst_size=2)
        assert [t.arrival for t in tasks] == [0, 0, 5, 5, 10, 10]
