"""Scheduler policy objects and workload builders — direct unit tests."""

import pytest

from repro.osim import (
    CpuBurst,
    Fifo,
    FpgaOp,
    PriorityScheduler,
    RoundRobin,
    Task,
    alternating_task,
    uniform_workload,
    zipf_index,
)


class TestSchedulerObjects:
    def test_round_robin_validation(self):
        with pytest.raises(ValueError):
            RoundRobin(time_slice=0)

    def test_priority_validation(self):
        with pytest.raises(ValueError):
            PriorityScheduler(time_slice=-1)

    def test_fifo_quantum_infinite(self):
        assert Fifo().quantum(Task("t", [])) == float("inf")

    def test_round_robin_fifo_pick_order(self):
        s = RoundRobin()
        a, b = Task("a", []), Task("b", [])
        s.enqueue(a)
        s.enqueue(b)
        assert s.pick() is a
        assert s.pick() is b
        assert s.pick() is None

    def test_priority_pick_stable_within_level(self):
        s = PriorityScheduler()
        t1 = Task("t1", [], priority=1)
        t2 = Task("t2", [], priority=1)
        t0 = Task("t0", [], priority=0)
        for t in (t1, t2, t0):
            s.enqueue(t)
        assert s.pick() is t0
        assert s.pick() is t1
        assert s.pick() is t2

    def test_ready_tasks_snapshot(self):
        s = Fifo()
        t = Task("t", [])
        s.enqueue(t)
        snapshot = s.ready_tasks
        snapshot.clear()
        assert len(s) == 1


class _SeedQueue:
    """The pre-refactor ready queue, verbatim: a plain list popped from
    the front (FIFO) or by linear stable min-scan (priority).  The
    deque/heap fast paths in :class:`PolicyScheduler` must reproduce
    these orders exactly."""

    def __init__(self, keyed: bool = False) -> None:
        self._ready = []
        self.keyed = keyed

    def enqueue(self, task):
        self._ready.append(task)

    def pick(self):
        if not self._ready:
            return None
        if not self.keyed:
            return self._ready.pop(0)
        best = min(range(len(self._ready)),
                   key=lambda i: (self._ready[i].priority, i))
        return self._ready.pop(best)


class TestSeedOrderEquality:
    """Order-equality pin: deque/heap hosts vs the seed list queues over
    interleaved enqueue/pick sequences."""

    def _trace(self, scheduler, seed_queue, rng_seed):
        import random

        rng = random.Random(rng_seed)
        tasks = [Task(f"t{i}", [], priority=rng.randrange(4))
                 for i in range(60)]
        picks = []
        pending = list(tasks)
        for _ in range(300):
            if pending and rng.random() < 0.6:
                t = pending.pop(0)
                scheduler.enqueue(t)
                seed_queue.enqueue(t)
            else:
                a = scheduler.pick()
                b = seed_queue.pick()
                assert a is b
                picks.append(a)
        # Drain both completely; the tails must match too.
        while True:
            a = scheduler.pick()
            b = seed_queue.pick()
            assert a is b
            if a is None:
                break
        return picks

    @pytest.mark.parametrize("rng_seed", [0, 1, 2, 3])
    def test_fifo_matches_seed_list(self, rng_seed):
        self._trace(Fifo(), _SeedQueue(), rng_seed)

    @pytest.mark.parametrize("rng_seed", [0, 1, 2, 3])
    def test_round_robin_matches_seed_list(self, rng_seed):
        self._trace(RoundRobin(time_slice=1e-3), _SeedQueue(), rng_seed)

    @pytest.mark.parametrize("rng_seed", [0, 1, 2, 3])
    def test_priority_matches_seed_scan(self, rng_seed):
        self._trace(PriorityScheduler(time_slice=1e-3),
                    _SeedQueue(keyed=True), rng_seed)


class TestWorkloadBuilders:
    def test_alternating_task_structure(self):
        t = alternating_task("t", "cfg", n_ops=3, cpu_burst=1e-3, cycles=10)
        kinds = [type(s).__name__ for s in t.program]
        assert kinds == ["CpuBurst", "FpgaOp"] * 3 + ["CpuBurst"]
        assert all(
            s.config == "cfg" for s in t.program if isinstance(s, FpgaOp)
        )

    def test_alternating_task_extra_configs(self):
        t = alternating_task("t", "a", 1, 1e-3, 10, configs=["a", "b"])
        assert t.configs == ["a", "b"]

    def test_uniform_workload_requires_configs(self):
        with pytest.raises(ValueError):
            uniform_workload([], 2, 2, 1e-3, 10)

    def test_uniform_workload_arrival_spread_seeded(self):
        t1 = uniform_workload(["a"], 5, 1, 1e-3, 10, seed=3, arrival_spread=1.0)
        t2 = uniform_workload(["a"], 5, 1, 1e-3, 10, seed=3, arrival_spread=1.0)
        assert [t.arrival for t in t1] == [t.arrival for t in t2]
        assert any(t.arrival > 0 for t in t1)

    def test_zipf_index_bounds(self):
        import random

        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= zipf_index(rng, 7, s=1.3) < 7

    def test_zipf_index_skew(self):
        import random

        rng = random.Random(2)
        draws = [zipf_index(rng, 10, s=1.5) for _ in range(2000)]
        assert draws.count(0) > draws.count(9) * 3
