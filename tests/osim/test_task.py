"""Task model tests."""

import pytest

from repro.osim import CpuBurst, FpgaOp, Task


class TestSteps:
    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            CpuBurst(-1)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            FpgaOp("c", 0)

    def test_negative_io_rejected(self):
        with pytest.raises(ValueError):
            FpgaOp("c", 1, io_words=-1)


class TestTask:
    def test_configs_inferred_from_program(self):
        t = Task("t", [FpgaOp("a", 1), CpuBurst(1), FpgaOp("b", 1), FpgaOp("a", 2)])
        assert t.configs == ["a", "b"]

    def test_explicit_configs_must_cover_usage(self):
        with pytest.raises(ValueError, match="undeclared"):
            Task("t", [FpgaOp("a", 1)], configs=["b"])

    def test_extra_declared_configs_allowed(self):
        t = Task("t", [FpgaOp("a", 1)], configs=["a", "spare"])
        assert "spare" in t.configs

    def test_unique_tids(self):
        a, b = Task("a", []), Task("b", [])
        assert a.tid != b.tid

    def test_demand_properties(self):
        t = Task("t", [CpuBurst(2.0), FpgaOp("c", 5), CpuBurst(3.0)])
        assert t.total_cpu_demand == 5.0
        assert len(t.fpga_ops) == 1

    def test_accounting_defaults(self):
        t = Task("t", [], arrival=4.0)
        assert t.accounting.turnaround is None
        assert t.accounting.fpga_overhead_time == 0.0
