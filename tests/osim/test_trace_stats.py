"""Trace and RunStats unit tests."""

import pytest

from repro.osim import CpuBurst, Task, Trace, run_stats


class TestTrace:
    def test_log_and_query(self):
        tr = Trace()
        tr.log(1.0, "dispatch", "a")
        tr.log(2.0, "done", "a")
        tr.log(3.0, "dispatch", "b", "extra")
        assert len(tr) == 3
        assert tr.count("dispatch") == 2
        assert [e.task for e in tr.of_kind("dispatch")] == ["a", "b"]
        assert tr.of_kind("dispatch")[1].detail == "extra"

    def test_disabled_trace_records_nothing(self):
        tr = Trace(enabled=False)
        tr.log(1.0, "dispatch", "a")
        assert len(tr) == 0


def finished_task(name, arrival, completion, **acc):
    t = Task(name, [CpuBurst(0.1)], arrival=arrival)
    t.accounting.arrival = arrival
    t.accounting.completion = completion
    for k, v in acc.items():
        setattr(t.accounting, k, v)
    return t


class TestRunStats:
    def test_aggregates(self):
        tasks = [
            finished_task("a", 0.0, 2.0, cpu_time=1.0, fpga_exec_time=0.5),
            finished_task("b", 1.0, 4.0, cpu_time=2.0, fpga_wait_time=0.25),
        ]
        stats = run_stats(tasks)
        assert stats.n_tasks == 2
        assert stats.makespan == 4.0
        assert stats.mean_turnaround == pytest.approx((2.0 + 3.0) / 2)
        assert stats.max_turnaround == 3.0
        assert stats.total_cpu_time == 3.0
        assert stats.total_fpga_exec == 0.5
        assert stats.total_fpga_wait == 0.25

    def test_useful_fraction(self):
        tasks = [finished_task("a", 0, 1, fpga_exec_time=3.0,
                               fpga_reconfig_time=1.0)]
        stats = run_stats(tasks)
        assert stats.useful_fraction == pytest.approx(0.75)

    def test_useful_fraction_no_fpga_work(self):
        stats = run_stats([finished_task("a", 0, 1, cpu_time=1.0)])
        assert stats.useful_fraction == 1.0

    def test_fpga_utilization(self):
        tasks = [finished_task("a", 0.0, 10.0, fpga_exec_time=2.5)]
        assert run_stats(tasks).fpga_utilization == pytest.approx(0.25)

    def test_unfinished_rejected(self):
        t = Task("x", [CpuBurst(1)])
        with pytest.raises(ValueError, match="not finished"):
            run_stats([t])

    def test_empty_run_is_zero(self):
        stats = run_stats([])
        assert stats.n_tasks == 0
        assert stats.makespan == 0.0
        assert stats.mean_turnaround == 0.0
        assert stats.useful_fraction == 1.0
        assert stats.fpga_utilization == 0.0
        assert run_stats([], makespan=3.0).makespan == 3.0

    def test_explicit_makespan_override(self):
        tasks = [finished_task("a", 0, 1)]
        assert run_stats(tasks, makespan=42.0).makespan == 42.0

    def test_per_task_table(self):
        tasks = [finished_task("a", 0, 1), finished_task("b", 0, 2)]
        stats = run_stats(tasks)
        assert set(stats.per_task) == {"a", "b"}

    def test_overhead_sums(self):
        t = finished_task(
            "a", 0, 1, fpga_reconfig_time=1.0, fpga_state_time=2.0,
            fpga_wait_time=3.0, fpga_io_time=4.0,
        )
        stats = run_stats([t])
        assert stats.fpga_overhead == pytest.approx(10.0)
        assert t.accounting.fpga_overhead_time == pytest.approx(10.0)
