"""Property-based end-to-end CAD tests: random circuits, full stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cad import compile_netlist, verify_bitstream
from repro.device import get_family
from repro.netlist import moore_fsm, random_logic

ARCH = get_family("VF10")


@given(
    st.integers(5, 45),
    st.integers(2, 8),
    st.integers(1, 4),
    st.integers(0, 2**31),
)
@settings(max_examples=8, deadline=None)
def test_random_combinational_compiles_and_verifies(n_gates, n_in, n_out, seed):
    nl = random_logic(n_gates, n_in, n_out, seed)
    res = compile_netlist(nl, ARCH, seed=seed & 0xFF, effort="greedy")
    verify_bitstream(nl, res.bitstream, ARCH, seed=seed & 0xFF)
    assert res.critical_path > 0
    assert res.bitstream.relocatable


@given(st.integers(2, 12), st.integers(1, 3), st.integers(0, 2**31))
@settings(max_examples=6, deadline=None)
def test_random_fsm_compiles_and_verifies(n_states, n_in, seed):
    nl = moore_fsm(n_states, n_in, seed)
    res = compile_netlist(nl, ARCH, seed=seed & 0xFF, effort="greedy")
    verify_bitstream(nl, res.bitstream, ARCH, seed=(seed >> 8) & 0xFF)
    assert res.bitstream.n_state_bits == nl.state_bits


@given(st.integers(0, 2**31), st.integers(10, 30))
@settings(max_examples=6, deadline=None)
def test_relocation_invariance_random(seed, n_gates):
    """A random circuit compiled once verifies at every in-bounds anchor
    corner — relocation is truly anchor-independent."""
    nl = random_logic(n_gates, 4, 2, seed)
    res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
    bs = res.bitstream
    r = bs.region
    corners = [
        (0, 0),
        (ARCH.width - r.w, 0),
        (0, ARCH.height - r.h),
        (ARCH.width - r.w, ARCH.height - r.h),
    ]
    for (x, y) in corners:
        verify_bitstream(nl, bs.anchored_at(x, y), ARCH, n_vectors=8, seed=3)
