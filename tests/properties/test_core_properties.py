"""Property-based tests for the VFPGA manager's data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ColumnAllocator, access_trace, make_replacement


class TestAllocatorInvariants:
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 6),
                          st.sampled_from(["first", "best", "worst"])),
                st.tuples(st.just("free"), st.integers(0, 100)),
                st.tuples(st.just("merge"), st.just(0)),
            ),
            max_size=120,
        ),
        st.booleans(),
    )
    @settings(max_examples=80)
    def test_conservation_and_disjointness(self, ops, coalesce):
        width = 24
        alloc = ColumnAllocator(width, coalesce=coalesce)
        held = []
        for op in ops:
            if op[0] == "alloc":
                x = alloc.allocate(op[1], fit=op[2])
                if x is not None:
                    held.append((x, op[1]))
            elif op[0] == "free" and held:
                x, w = held.pop(op[1] % len(held))
                alloc.release(x, w)
            elif op[0] == "merge":
                alloc.merge_free()
            # Invariant 1: columns are conserved.
            assert alloc.total_free + sum(w for _x, w in held) == width
            # Invariant 2: all spans (free + held) are pairwise disjoint.
            spans = sorted(alloc.free_spans + held)
            for (x1, w1), (x2, _w2) in zip(spans, spans[1:]):
                assert x1 + w1 <= x2
            # Invariant 3: spans stay inside the device.
            for x, w in spans:
                assert 0 <= x and x + w <= width

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=10))
    def test_allocate_free_all_merge_restores_everything(self, widths):
        alloc = ColumnAllocator(32, coalesce=False)
        held = []
        for w in widths:
            x = alloc.allocate(w)
            if x is not None:
                held.append((x, w))
        for x, w in held:
            alloc.release(x, w)
        alloc.merge_free()
        assert alloc.free_spans == [(0, 32)]
        assert alloc.fragmentation == 0.0

    @given(st.integers(1, 24), st.sampled_from(["first", "best", "worst"]))
    def test_allocation_result_is_free_and_fits(self, w, fit):
        alloc = ColumnAllocator(24, coalesce=False)
        alloc.reserve(3, 4)
        alloc.reserve(10, 2)
        x = alloc.allocate(w, fit=fit)
        if x is not None:
            assert 0 <= x and x + w <= 24
            for rx, rw in [(3, 4), (10, 2)]:
                assert x + w <= rx or rx + rw <= x


class TestReplacementInvariants:
    @given(
        st.sampled_from(["fifo", "lru", "mru", "clock", "random"]),
        st.lists(st.tuples(st.integers(0, 7), st.booleans()),
                 min_size=1, max_size=60),
    )
    @settings(max_examples=60)
    def test_victim_always_among_candidates(self, policy_name, events):
        policy = make_replacement(policy_name)
        resident = set()
        for key, is_access in events:
            if key in resident:
                policy.on_access(key)
            else:
                resident.add(key)
                policy.on_insert(key)
            if len(resident) > 3:
                candidates = sorted(resident)
                victim = policy.victim(candidates)
                assert victim in candidates
                policy.on_remove(victim)
                resident.discard(victim)

    @given(st.lists(st.integers(0, 5), min_size=4, max_size=40))
    def test_lru_never_evicts_most_recent(self, accesses):
        policy = make_replacement("lru")
        resident = []
        for key in accesses:
            if key in resident:
                policy.on_access(key)
                resident.remove(key)
                resident.append(key)
            else:
                policy.on_insert(key)
                resident.append(key)
        if len(set(resident)) >= 2:
            candidates = sorted(set(resident))
            assert policy.victim(candidates) != resident[-1]


class TestAccessTraceInvariants:
    @given(
        st.integers(1, 16),
        st.integers(0, 100),
        st.sampled_from(["sequential", "looping", "random", "zipf"]),
        st.integers(0, 2**31),
    )
    def test_length_and_range(self, n_parts, n_accesses, pattern, seed):
        trace = access_trace(n_parts, n_accesses, pattern=pattern, seed=seed)
        assert len(trace) == n_accesses
        assert all(0 <= i < n_parts for i in trace)

    @given(st.integers(1, 16), st.integers(1, 100), st.integers(0, 2**31))
    def test_deterministic_per_seed(self, n_parts, n_accesses, seed):
        a = access_trace(n_parts, n_accesses, pattern="random", seed=seed)
        b = access_trace(n_parts, n_accesses, pattern="random", seed=seed)
        assert a == b


class TestMuxInvariants:
    @given(st.integers(1, 512), st.integers(0, 4096), st.integers(0, 2048))
    def test_factor_lower_bound(self, pins, words, virtual):
        from repro.core import PinMultiplexer

        mux = PinMultiplexer(pins)
        t = mux.transfer_time(words, virtual)
        assert t.factor >= 1.0
        assert t.seconds >= words / mux.word_rate - 1e-12

    @given(st.lists(st.tuples(st.text(alphabet="abc", min_size=1, max_size=2),
                              st.integers(0, 64)), max_size=30))
    def test_begin_end_never_negative(self, events):
        from repro.core import PinMultiplexer

        mux = PinMultiplexer(32)
        holding = {}
        for name, pins in events:
            if holding.get(name):
                mux.end(name, holding.pop(name))
            else:
                mux.begin(name, pins)
                holding[name] = pins
            assert all(v >= 0 for v in mux.active.values())
        assert mux.oversubscription() >= 1.0
