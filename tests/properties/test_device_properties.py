"""Property-based tests for the device model: codec, geometry, bitstreams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import (
    Architecture,
    ClbConfig,
    FrameCodec,
    IobConfig,
    IobDirection,
    Rect,
    wire_in_region,
    wires_in_region,
)

ARCH = Architecture("prop", 8, 8, k=4, channel_width=4)
CODEC = FrameCodec(ARCH)


@st.composite
def clb_configs(draw):
    registered = draw(st.booleans())
    ff = registered or draw(st.booleans())
    return ClbConfig(
        lut_truth=draw(st.integers(0, (1 << 16) - 1)),
        ff_enable=ff,
        ff_init=draw(st.integers(0, 1)) if ff else 0,
        out_registered=registered,
        input_sel=tuple(
            draw(st.integers(0, 4 * ARCH.channel_width)) for _ in range(4)
        ),
        out_drives=frozenset(
            draw(st.lists(st.integers(0, 4 * ARCH.channel_width - 1),
                          max_size=6))
        ),
    )


@given(clb_configs())
@settings(max_examples=100)
def test_clb_codec_roundtrip(cfg):
    assert CODEC.decode_clb(CODEC.encode_clb(cfg)) == cfg


@given(st.sets(st.tuples(st.integers(0, ARCH.channel_width - 1),
                         st.integers(0, 5)), max_size=10))
def test_switch_codec_roundtrip(keys):
    enabled = frozenset(keys)
    assert CODEC.decode_switchbox(CODEC.encode_switchbox(enabled)) == enabled


@given(st.booleans(), st.integers(0, ARCH.channel_width))
def test_iob_codec_roundtrip(is_out, track):
    cfg = IobConfig(
        enable=track > 0,
        direction=IobDirection.OUTPUT if is_out else IobDirection.INPUT,
        track_sel=track,
    )
    assert CODEC.decode_iob(CODEC.encode_iob(cfg)) == cfg


@st.composite
def rects(draw, max_side=8):
    w = draw(st.integers(1, max_side))
    h = draw(st.integers(1, max_side))
    x = draw(st.integers(0, max_side - w))
    y = draw(st.integers(0, max_side - h))
    return Rect(x, y, w, h)


@given(rects(), rects())
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(rects(), rects())
def test_overlap_iff_common_coord(a, b):
    common = set(a.coords()) & set(b.coords())
    assert a.overlaps(b) == bool(common)


@given(rects(), st.data())
def test_split_partitions_exactly(r, data):
    if r.w > 1 and data.draw(st.booleans()):
        cut = data.draw(st.integers(1, r.w - 1))
        p, q = r.split_vertical(cut)
    elif r.h > 1:
        cut = data.draw(st.integers(1, r.h - 1))
        p, q = r.split_horizontal(cut)
    else:
        return
    assert not p.overlaps(q)
    assert p.area + q.area == r.area
    assert set(p.coords()) | set(q.coords()) == set(r.coords())


@given(rects(), rects())
def test_disjoint_regions_own_disjoint_wires(a, b):
    """The isolation theorem behind partitioning: non-overlapping regions
    never own a common wire."""
    if a.overlaps(b):
        return
    wa = set(wires_in_region(ARCH, a))
    wb = set(wires_in_region(ARCH, b))
    assert not (wa & wb)


@given(rects())
def test_owned_wires_match_predicate(r):
    owned = set(wires_in_region(ARCH, r))
    from repro.device import all_wires

    for w in all_wires(ARCH):
        assert (w in owned) == wire_in_region(w, r)


@given(rects(), st.integers(-8, 8), st.integers(-8, 8))
@settings(max_examples=60)
def test_relocation_translates_frames(r, dx, dy):
    """Synthetic bitstream relocation: frames touched shift exactly by dx."""
    from repro.core import synthetic_bitstream

    moved_rect = Rect(
        max(0, min(r.x + dx, ARCH.width - r.w)),
        max(0, min(r.y + dy, ARCH.height - r.h)),
        r.w, r.h,
    )
    bs = synthetic_bitstream("p", ARCH, r.w, r.h,
                             n_state_bits=min(3, r.area)).anchored_at(r.x, r.y)
    moved = bs.anchored_at(moved_rect.x, moved_rect.y)
    moved.validate(ARCH)
    assert moved.frames_touched(ARCH) == set(moved_rect.columns())
    # State bits moved rigidly.
    for name, c in bs.state_bits.items():
        c2 = moved.state_bits[name]
        assert (c2.x - c.x, c2.y - c.y) == (
            moved_rect.x - r.x, moved_rect.y - r.y
        )
