"""Property-based tests for netlists, generators and technology mapping."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cad import absorb_fanin, check_mapped, technology_map
from repro.netlist import (
    LogicSimulator,
    accumulator,
    counter,
    moore_fsm,
    random_logic,
    ripple_adder,
    serial_crc,
)


@given(st.integers(2, 200), st.integers(1, 12), st.integers(1, 8),
       st.integers(0, 2**31))
@settings(max_examples=40)
def test_random_logic_always_valid(n_gates, n_inputs, n_outputs, seed):
    nl = random_logic(n_gates, n_inputs, n_outputs, seed)
    nl.validate()  # no cycles, no dangling nets
    assert len(nl.primary_inputs) == n_inputs
    assert len(nl.primary_outputs) == n_outputs


@given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 1))
@settings(max_examples=30)
def test_adder_correct_for_random_widths(width_a, _unused, cin):
    width = width_a
    sim = LogicSimulator(ripple_adder(width))
    rng = random.Random(width * 7919 + cin)
    for _ in range(8):
        a, b = rng.randrange(1 << width), rng.randrange(1 << width)
        out = sim.evaluate({
            **LogicSimulator.pack_bus("a", a, width),
            **LogicSimulator.pack_bus("b", b, width),
            "cin": cin,
        })
        got = LogicSimulator.unpack_bus(out, "s") | (out["cout"] << width)
        assert got == a + b + cin


@given(st.integers(0, 2**31), st.integers(10, 80))
@settings(max_examples=25, deadline=None)
def test_techmap_preserves_function_on_random_logic(seed, n_gates):
    nl = random_logic(n_gates, 6, 4, seed)
    mapped = technology_map(nl, k=4)
    check_mapped(mapped, 4)
    golden, dut = LogicSimulator(nl), LogicSimulator(mapped)
    rng = random.Random(seed ^ 0xABCDEF)
    names = [c.name for c in nl.primary_inputs]
    for _ in range(10):
        vec = {n: rng.randint(0, 1) for n in names}
        assert golden.evaluate(vec) == dut.evaluate(vec)


@given(st.integers(0, 2**31), st.integers(2, 32), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_techmap_preserves_sequential_behaviour(seed, n_states, n_inputs):
    nl = moore_fsm(n_states, n_inputs, seed)
    mapped = technology_map(nl, k=4)
    golden, dut = LogicSimulator(nl), LogicSimulator(mapped)
    rng = random.Random(seed + 1)
    names = [c.name for c in nl.primary_inputs]
    stim = [{n: rng.randint(0, 1) for n in names} for _ in range(12)]
    assert golden.run(stim) == dut.run(stim)


@given(
    st.integers(1, 3),       # node support size
    st.integers(1, 3),       # sub support size
    st.data(),
)
@settings(max_examples=60)
def test_absorb_fanin_is_boolean_substitution(n_node, n_sub, data):
    node_support = [f"n{i}" for i in range(n_node)]
    sub_support = data.draw(
        st.lists(
            st.sampled_from([f"n{i}" for i in range(n_node)] +
                            [f"s{i}" for i in range(n_sub)]),
            min_size=1, max_size=n_sub + n_node, unique=True,
        )
    )
    position = data.draw(st.integers(0, n_node - 1))
    node_truth = data.draw(st.integers(0, (1 << (1 << n_node)) - 1))
    sub_truth = data.draw(st.integers(0, (1 << (1 << len(sub_support))) - 1))
    merged, truth = absorb_fanin(
        node_support, node_truth, position, sub_support, sub_truth
    )
    assert len(merged) <= (n_node - 1) + len(sub_support)
    assert len(set(merged)) == len(merged)
    # Semantic check by exhaustive evaluation over merged support.
    for pattern in range(1 << len(merged)):
        env = {net: (pattern >> i) & 1 for i, net in enumerate(merged)}
        sub_idx = 0
        for j, net in enumerate(sub_support):
            sub_idx |= env[net] << j
        sub_val = (sub_truth >> sub_idx) & 1
        node_idx = 0
        for i, net in enumerate(node_support):
            bit = sub_val if i == position else env.get(net, 0)
            node_idx |= bit << i
        want = (node_truth >> node_idx) & 1
        got = (truth >> pattern) & 1
        assert got == want


@given(st.integers(2, 10))
def test_counter_state_save_restore_roundtrip(width):
    sim = LogicSimulator(counter(width))
    for _ in range(width):
        sim.step({"en": 1})
    snap = sim.read_state()
    future = [sim.step({"en": 1}) for _ in range(5)]
    sim.write_state(snap)
    replay = [sim.step({"en": 1}) for _ in range(5)]
    assert future == replay


@given(st.integers(2, 8), st.integers(0, 2**16))
@settings(max_examples=30)
def test_crc_linearity_of_zero_stream(width, poly_seed):
    """A CRC register fed only zeros from reset stays zero."""
    poly = (poly_seed % ((1 << width) - 1)) + 1
    sim = LogicSimulator(serial_crc(width, poly))
    for _ in range(16):
        out = sim.step({"din": 0})
    assert LogicSimulator.unpack_bus(out, "crc") == 0


@given(st.integers(1, 8), st.lists(st.integers(0, 255), min_size=1,
                                   max_size=20))
@settings(max_examples=30)
def test_accumulator_matches_modular_sum(width, samples):
    sim = LogicSimulator(accumulator(width))
    total = 0
    mask = (1 << width) - 1
    for s in samples:
        out = sim.step(LogicSimulator.pack_bus("d", s & mask, width))
        assert LogicSimulator.unpack_bus(out, "acc") == total
        total = (total + (s & mask)) & mask
