"""Property-based tests for the CPU scheduling engines.

Three contracts the refactor must not break, over arbitrary interleaved
enqueue/pick sequences:

* **conservation** — no strategy ever loses or duplicates a task;
* **degeneracy** — ``RoundRobin(time_slice=inf)`` makes exactly the
  same decisions as ``Fifo`` (only the quantum differs, and an infinite
  quantum *is* FIFO);
* **no starvation** — ``AgedPriority`` eventually dispatches every
  task, however low its priority, once its wait outweighs the priority
  gap (the aging credit grows without bound).

The heap/deque fast paths are additionally checked against the pure
``pick(ReadyView)`` protocol: forcing a keyed strategy through the
dynamic path must not change a single decision.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_cpu_policy, make_cpu_scheduler
from repro.osim import PolicyScheduler, Task

# An op sequence: True = enqueue the next pending task, False = pick.
OPS = st.lists(st.booleans(), min_size=1, max_size=80)
PRIORITIES = st.lists(st.integers(0, 5), min_size=80, max_size=80)

ALL_NAMES = ["fifo", "rr", "priority", "edf", "aged-priority"]


def _tasks(priorities):
    return [Task(f"t{i}", [], priority=p, deadline=float(i))
            for i, p in enumerate(priorities)]


def _drive(scheduler, ops, tasks):
    """Apply the op sequence, then drain; returns the picked tasks."""
    pending = list(tasks)
    picked = []
    for enq in ops:
        if enq and pending:
            scheduler.enqueue(pending.pop(0))
        else:
            t = scheduler.pick()
            if t is not None:
                picked.append(t)
    while len(scheduler):
        picked.append(scheduler.pick())
    return picked


class TestConservation:
    @given(st.sampled_from(ALL_NAMES), OPS, PRIORITIES)
    @settings(max_examples=120)
    def test_no_task_lost_or_duplicated(self, name, ops, priorities):
        tasks = _tasks(priorities)
        scheduler = make_cpu_scheduler(name)
        n_enqueued = min(sum(ops), len(tasks))  # enqueues actually done
        picked = _drive(scheduler, ops, tasks)
        # Exactly the enqueued prefix comes back: nothing lost, nothing
        # invented, nothing twice (identity-level comparison).
        assert len(picked) == n_enqueued
        assert len({id(t) for t in picked}) == len(picked)
        assert {id(t) for t in picked} == {id(t)
                                           for t in tasks[:n_enqueued]}
        assert len(scheduler) == 0


class TestDegeneracy:
    @given(OPS, PRIORITIES)
    @settings(max_examples=80)
    def test_rr_infinite_slice_is_fifo(self, ops, priorities):
        tasks = _tasks(priorities)
        rr = make_cpu_scheduler("rr", time_slice=float("inf"))
        fifo = make_cpu_scheduler("fifo")
        assert _drive(rr, ops, tasks) == _drive(fifo, ops, list(tasks))
        t = tasks[0]
        assert rr.quantum(t) == fifo.quantum(t) == float("inf")


class TestFastPathEquivalence:
    @given(st.sampled_from(["priority", "edf"]), OPS, PRIORITIES)
    @settings(max_examples=80)
    def test_heap_path_matches_pure_pick(self, name, ops, priorities):
        tasks = _tasks(priorities)
        fast = make_cpu_scheduler(name)
        slow_policy = make_cpu_policy(name)
        # Force the generic pure-pick path: same key, no heap.
        slow_policy.order = "dynamic"
        slow = PolicyScheduler(slow_policy)
        assert _drive(fast, ops, tasks) == _drive(slow, ops, list(tasks))


class TestNoStarvation:
    @given(st.integers(1, 5), st.integers(1, 20))
    @settings(max_examples=60)
    def test_aged_priority_dispatches_the_starved(self, gap, n_rivals):
        """A single low-priority task enqueued at time 0 beats any
        stream of fresh priority-0 rivals once its wait exceeds
        ``gap * aging``."""
        scheduler = make_cpu_scheduler("aged-priority", aging=1.0)
        now = 0.0
        scheduler.bind_clock(lambda: now)
        victim = Task("victim", [], priority=gap)
        scheduler.enqueue(victim)
        for i in range(n_rivals):
            # Fresh urgent rival each round; clock advances one aging
            # quantum per round.
            now = float(i)
            rival = Task(f"r{i}", [], priority=0)
            scheduler.enqueue(rival)
            picked = scheduler.pick()
            if picked is victim:
                break
            assert picked is rival
            assert now - 0.0 <= gap  # not yet aged past the gap
        else:
            # Never picked inside the loop: one more round past the gap
            # must surface the victim.
            now = float(gap) + 1.0
            scheduler.enqueue(Task("last-rival", [], priority=0))
            assert scheduler.pick() is victim
