"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).callbacks.append(lambda e, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=1, max_size=30))
def test_same_time_events_fire_in_insertion_order(delays):
    sim = Simulator()
    order = []
    for i, d in enumerate(delays):
        sim.timeout(d).callbacks.append(lambda e, i=i: order.append(i))
    sim.run()
    # Stable by (time, insertion index).
    expect = [i for _d, i in sorted(
        ((d, i) for i, d in enumerate(delays)), key=lambda p: (p[0], p[1])
    )]
    assert order == expect


@given(st.lists(st.tuples(st.integers(0, 3), st.floats(0.01, 10)),
                min_size=1, max_size=20),
       st.integers(1, 3))
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(jobs, capacity):
    from repro.sim import Resource

    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    peak = [0]

    def worker(delay, hold):
        yield sim.timeout(delay)
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.count)
        assert res.count <= capacity
        yield sim.timeout(hold)
        res.release(req)

    for delay, hold in jobs:
        sim.process(worker(delay, hold))
    sim.run()
    assert res.count == 0
    assert peak[0] <= capacity


@given(st.lists(st.floats(0.0, 50.0), min_size=1, max_size=25),
       st.integers(0, 2**32 - 1))
def test_simulation_is_deterministic(delays, seed):
    def trace():
        sim = Simulator()
        log = []

        def body(i, d):
            yield sim.timeout(d)
            log.append((round(sim.now, 9), i))
            yield sim.timeout(d / 2 + 0.1)
            log.append((round(sim.now, 9), -i))

        for i, d in enumerate(delays):
            sim.process(body(i, d))
        sim.run()
        return log

    assert trace() == trace()


@given(st.lists(st.text(alphabet="ab", min_size=1, max_size=3),
                min_size=1, max_size=20))
def test_store_is_fifo(items):
    from repro.sim import Store

    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            x = yield store.get()
            got.append(x)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(items)
