"""Unit tests for the event primitives."""

import pytest

from repro.sim import SimulationError, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_initial_state(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_none_still_triggered(self, sim):
        ev = sim.event()
        ev.succeed()
        assert ev.triggered
        assert ev.value is None

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed(1)

    def test_callbacks_run_on_process(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("x")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["x"]
        assert ev.processed

    def test_unhandled_failure_escalates(self, sim):
        ev = sim.event()
        ev.fail(ValueError("unseen"))
        with pytest.raises(ValueError, match="unseen"):
            sim.run()

    def test_defused_failure_does_not_escalate(self, sim):
        ev = sim.event()
        ev.fail(ValueError("defused"))
        ev.defused = True
        sim.run()  # must not raise

    def test_trigger_copies_state(self, sim):
        src = sim.event()
        dst = sim.event()
        src.succeed(7)
        dst.trigger(src)
        sim.run()
        assert dst.value == 7


class TestTimeout:
    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Timeout(sim, -1)

    def test_fires_at_delay(self, sim):
        t = sim.timeout(3.5, value="done")
        sim.run()
        assert sim.now == 3.5
        assert t.value == "done"

    def test_zero_delay_fires_now(self, sim):
        t = sim.timeout(0)
        sim.run()
        assert sim.now == 0.0
        assert t.processed

    def test_ordering_is_fifo_at_same_time(self, sim):
        order = []
        for i in range(5):
            sim.timeout(1).callbacks.append(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        a, b = sim.timeout(1, "a"), sim.timeout(4, "b")
        cond = sim.all_of([a, b])
        sim.run()
        assert cond.triggered
        assert cond.value == {a: "a", b: "b"}
        assert sim.now == 4

    def test_any_of_fires_on_first(self, sim):
        a, b = sim.timeout(1, "a"), sim.timeout(4, "b")
        cond = sim.any_of([a, b])
        fired_at = []
        cond.callbacks.append(lambda e: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [1]
        assert a in cond.value
        assert b not in cond.value

    def test_empty_all_of_fires_immediately(self, sim):
        cond = sim.all_of([])
        sim.run()
        assert cond.value == {}

    def test_all_of_propagates_failure(self, sim):
        a = sim.event()
        cond = sim.all_of([a, sim.timeout(1)])
        cond.defused = True
        a.fail(RuntimeError("dead"))
        sim.run()
        assert not cond.ok
        assert isinstance(cond.value, RuntimeError)

    def test_cross_simulator_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.all_of([other.timeout(1)])
