"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_process_advances_time(sim):
    log = []

    def body():
        yield sim.timeout(2)
        log.append(sim.now)
        yield sim.timeout(3)
        log.append(sim.now)

    sim.process(body())
    sim.run()
    assert log == [2, 5]


def test_process_return_value_is_event_value(sim):
    def body():
        yield sim.timeout(1)
        return "result"

    p = sim.process(body())
    sim.run()
    assert p.value == "result"


def test_join_on_child_process(sim):
    def child():
        yield sim.timeout(7)
        return 99

    def parent(out):
        got = yield sim.process(child())
        out.append((sim.now, got))

    out = []
    sim.process(parent(out))
    sim.run()
    assert out == [(7, 99)]


def test_yield_non_event_raises(sim):
    def body():
        yield 42

    sim.process(body())
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


def test_exception_in_process_escalates(sim):
    def body():
        yield sim.timeout(1)
        raise KeyError("inner")

    sim.process(body())
    with pytest.raises(KeyError):
        sim.run()


def test_exception_caught_by_joiner(sim):
    def child():
        yield sim.timeout(1)
        raise ValueError("child died")

    def parent(out):
        try:
            yield sim.process(child())
        except ValueError as exc:
            out.append(str(exc))

    out = []
    sim.process(parent(out))
    sim.run()
    assert out == ["child died"]


def test_yield_already_processed_event(sim):
    ready = sim.event()
    ready.succeed("early")

    def body(out):
        yield sim.timeout(5)
        got = yield ready  # processed long ago; must not deadlock
        out.append((sim.now, got))

    out = []
    sim.process(body(out))
    sim.run()
    assert out == [(5, "early")]


class TestInterrupt:
    def test_interrupt_resumes_with_exception(self, sim):
        log = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        def attacker(p):
            yield sim.timeout(3)
            p.interrupt("preempted")

        p = sim.process(victim())
        sim.process(attacker(p))
        sim.run()
        assert log == [(3, "preempted")]

    def test_interrupt_detaches_from_target(self, sim):
        resumptions = []

        def victim():
            try:
                yield sim.timeout(10)
                resumptions.append("timeout")
            except Interrupt:
                resumptions.append("interrupt")
                yield sim.timeout(100)
                resumptions.append("after")

        def attacker(p):
            yield sim.timeout(1)
            p.interrupt()

        p = sim.process(victim())
        sim.process(attacker(p))
        sim.run()
        # The original timeout at t=10 must NOT resume the victim again.
        assert resumptions == ["interrupt", "after"]

    def test_interrupt_finished_process_raises(self, sim):
        def body():
            yield sim.timeout(1)

        p = sim.process(body())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupt_can_continue_working(self, sim):
        done = []

        def victim():
            remaining = 10.0
            start = sim.now
            try:
                yield sim.timeout(remaining)
            except Interrupt:
                remaining -= sim.now - start
                yield sim.timeout(remaining)
            done.append(sim.now)

        def attacker(p):
            yield sim.timeout(4)
            p.interrupt()

        p = sim.process(victim())
        sim.process(attacker(p))
        sim.run()
        assert done == [10.0]

    def test_unhandled_interrupt_escalates(self, sim):
        def victim():
            yield sim.timeout(100)

        def attacker(p):
            yield sim.timeout(1)
            p.interrupt("kill")

        p = sim.process(victim())
        sim.process(attacker(p))
        with pytest.raises(Interrupt):
            sim.run()


def test_many_processes_deterministic_order(sim):
    order = []

    def body(i):
        yield sim.timeout(1)
        order.append(i)

    for i in range(20):
        sim.process(body(i))
    sim.run()
    assert order == list(range(20))


def test_non_generator_rejected(sim):
    with pytest.raises(TypeError):
        sim.process(lambda: None)
