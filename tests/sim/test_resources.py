"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_immediately_when_free(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def body():
            req = res.request()
            yield req
            log.append(sim.now)
            res.release(req)

        sim.process(body())
        sim.run()
        assert log == [0]
        assert res.count == 0

    def test_mutual_exclusion_serialises(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def worker(i):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(10)
            res.release(req)
            spans.append((i, start, sim.now))

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        assert spans == [(0, 0, 10), (1, 10, 20), (2, 20, 30)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        starts = []

        def worker(i):
            req = res.request()
            yield req
            starts.append((i, sim.now))
            yield sim.timeout(10)
            res.release(req)

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        assert starts == [(0, 0), (1, 0), (2, 10), (3, 10)]

    def test_priority_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5)
            res.release(req)

        def waiter(name, prio, delay):
            yield sim.timeout(delay)
            req = res.request(priority=prio)
            yield req
            order.append(name)
            res.release(req)

        sim.process(holder())
        sim.process(waiter("low", 10, 1))
        sim.process(waiter("high", 0, 2))
        sim.run()
        assert order == ["high", "low"]

    def test_context_manager_releases(self, sim):
        res = Resource(sim, capacity=1)

        def body():
            with res.request() as req:
                yield req
                yield sim.timeout(1)

        sim.process(body())
        sim.run()
        assert res.count == 0
        assert res.queue_length == 0

    def test_release_unheld_raises(self, sim):
        res = Resource(sim, capacity=1)
        req = res.request()
        sim.run()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert res.queue_length == 1
        second.cancel()
        assert res.queue_length == 0
        res.release(first)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            x = yield store.get()
            got.append(x)
            y = yield store.get()
            got.append(y)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            x = yield store.get()
            got.append((sim.now, x))

        def producer():
            yield sim.timeout(9)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(9, "late")]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put(1)
            events.append(("put1", sim.now))
            yield store.put(2)
            events.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert events == [("put1", 0), ("put2", 5)]

    def test_len(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        sim.run()
        assert len(store) == 2

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)
