"""Unit tests for the Simulator calendar."""

import pytest

from repro.sim import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_initial_time(sim):
    assert sim.now == 0.0
    assert Simulator(start_time=100).now == 100.0


def test_peek_empty_is_inf(sim):
    assert sim.peek() == float("inf")


def test_peek_returns_next_time(sim):
    sim.timeout(5)
    sim.timeout(2)
    assert sim.peek() == 2


def test_step_on_empty_raises(sim):
    with pytest.raises(SimulationError):
        sim.step()


def test_run_until_time_stops_and_sets_now(sim):
    fired = []
    sim.timeout(1).callbacks.append(lambda e: fired.append(1))
    sim.timeout(10).callbacks.append(lambda e: fired.append(10))
    sim.run(until=5)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_until_boundary_inclusive(sim):
    fired = []
    sim.timeout(5).callbacks.append(lambda e: fired.append(5))
    sim.run(until=5)
    assert fired == [5]


def test_run_until_past_raises(sim):
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_run_until_event(sim):
    marker = sim.timeout(7)
    sim.timeout(100)
    sim.run(until=marker)
    assert sim.now == 7


def test_run_until_event_never_fires_raises(sim):
    ev = sim.event()
    sim.timeout(3)
    with pytest.raises(SimulationError, match="calendar emptied"):
        sim.run(until=ev)


def test_run_until_already_processed_event(sim):
    ev = sim.timeout(1)
    sim.run()
    sim.run(until=ev)  # no-op, must not raise


def test_schedule_callback(sim):
    calls = []
    sim.schedule_callback(4, lambda: calls.append(sim.now))
    sim.run()
    assert calls == [4]


def test_determinism_across_runs():
    def trace():
        sim = Simulator()
        out = []

        def body(i):
            yield sim.timeout(i % 3)
            out.append((sim.now, i))
            yield sim.timeout(2)
            out.append((sim.now, i))

        for i in range(10):
            sim.process(body(i))
        sim.run()
        return out

    assert trace() == trace()


def test_active_process_visible_during_resume(sim):
    seen = []

    def body():
        seen.append(sim.active_process)
        yield sim.timeout(1)
        seen.append(sim.active_process)

    p = sim.process(body())
    sim.run()
    assert seen == [p, p]
    assert sim.active_process is None
