"""Fixtures for the telemetry-spine tests.

Mirrors the synthetic registry of ``tests/core`` and adds a harness that
wires an :class:`~repro.telemetry.EventLog` onto the kernel bus, so every
test sees both the final state (metrics, stats) and the full event stream
it should be derivable from.
"""

import pytest

from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import Kernel, RoundRobin
from repro.sim import Simulator
from repro.telemetry import EventBus, EventLog


@pytest.fixture
def arch():
    return get_family("VF12")


@pytest.fixture
def registry(arch):
    reg = ConfigRegistry(arch)
    h = arch.height
    reg.register_synthetic("a3", 3, h, critical_path=20e-9)
    reg.register_synthetic("b3", 3, h, critical_path=20e-9)
    reg.register_synthetic("c4", 4, h, critical_path=20e-9)
    reg.register_synthetic("seq4", 4, h, n_state_bits=24, critical_path=20e-9)
    return reg


class LoggedRun:
    """One simulated system with a recording bus."""

    def __init__(self, service, scheduler=None, context_switch=0.0,
                 subscribe=None, **kw):
        self.sim = Simulator()
        self.service = service
        # Subscribe the log before the kernel attaches the service: boot
        # downloads (merged/overlay) publish during attach and must be in
        # the stream for it to be replayable.  ``subscribe`` lets a test
        # attach further live subscribers (aggregators, span builders) at
        # the same point, for exact live-vs-replay parity.
        self.bus = EventBus()
        self.log = EventLog(self.bus)
        if subscribe is not None:
            subscribe(self.bus)
        self.kernel = Kernel(
            self.sim,
            scheduler if scheduler is not None else RoundRobin(time_slice=1e-3),
            service,
            context_switch=context_switch,
            bus=self.bus,
            **kw,
        )

    def run(self, tasks):
        self.kernel.spawn_all(tasks)
        return self.kernel.run()


@pytest.fixture
def logged():
    return LoggedRun
