"""Rolling-window anomaly detectors (:mod:`repro.telemetry.anomaly`)."""

import pytest

from repro.telemetry import (
    AnomalyDetector,
    AuditViolation,
    Evict,
    EventBus,
    FpgaComplete,
    FpgaRequest,
    Load,
)


def complete_op(det, op_id, start, latency, task="t", config="c"):
    det(FpgaRequest(start, task, config=config, op_id=op_id))
    det(FpgaComplete(start + latency, task, config=config, op_id=op_id))


class TestLatencySpike:
    def test_spike_over_trailing_p95(self):
        det = AnomalyDetector(min_samples=4, spike_factor=3.0)
        for i in range(4):
            complete_op(det, i + 1, start=i * 10.0, latency=1.0)
        complete_op(det, 99, start=100.0, latency=10.0)
        spikes = [a for a in det.anomalies
                  if a.invariant == "anomaly-latency-spike"]
        assert len(spikes) == 1
        assert spikes[0].severity == "warning"

    def test_quiet_before_min_samples(self):
        """Early operations always look slow; they must not alarm."""
        det = AnomalyDetector(min_samples=4, spike_factor=3.0)
        complete_op(det, 1, start=0.0, latency=1.0)
        complete_op(det, 2, start=10.0, latency=50.0)
        assert det.anomalies == []

    def test_steady_stream_is_quiet(self):
        det = AnomalyDetector(min_samples=4, spike_factor=3.0)
        for i in range(20):
            complete_op(det, i + 1, start=i * 10.0, latency=1.0 + 0.01 * i)
        assert det.anomalies == []


class TestOccupancyLeak:
    def test_monotone_rising_floor_is_a_leak(self):
        det = AnomalyDetector(window=2, leak_windows=2)
        for i in range(6):  # six loads, never an evict
            det(Load(float(i), "t", source="svc", handle=f"h{i}"))
        leaks = [a for a in det.anomalies
                 if a.invariant == "anomaly-occupancy-leak"]
        assert len(leaks) == 1

    def test_balanced_load_evict_is_quiet(self):
        det = AnomalyDetector(window=2, leak_windows=2)
        for i in range(6):
            det(Load(float(i), "t", source="svc", handle="h"))
            det(Evict(float(i) + 0.5, "t", source="svc", handle="h"))
        assert det.anomalies == []

    def test_exclusive_load_resets_residency(self):
        det = AnomalyDetector(window=2, leak_windows=2)
        for i in range(6):
            det(Load(float(i), "t", source="svc", handle=f"h{i}",
                     exclusive=True))
        assert det.anomalies == []


class TestStarvation:
    def test_old_open_op_flags_once(self):
        det = AnomalyDetector(min_samples=2, starvation_factor=10.0)
        complete_op(det, 1, start=0.0, latency=1.0)
        complete_op(det, 2, start=2.0, latency=1.0)
        det(FpgaRequest(10.0, "starved", config="c", op_id=3))
        det(Load(30.0, "t", source="svc", handle="h"))
        starving = [a for a in det.anomalies
                    if a.invariant == "anomaly-starvation"]
        assert len(starving) == 1
        assert starving[0].task == "starved"
        det(Load(50.0, "t", source="svc", handle="h2"))
        assert len([a for a in det.anomalies
                    if a.invariant == "anomaly-starvation"]) == 1

    def test_normal_wait_is_quiet(self):
        det = AnomalyDetector(min_samples=2, starvation_factor=10.0)
        complete_op(det, 1, start=0.0, latency=1.0)
        complete_op(det, 2, start=2.0, latency=1.0)
        det(FpgaRequest(10.0, "t", config="c", op_id=3))
        det(Load(12.0, "t", source="svc", handle="h"))
        assert det.anomalies == []


class TestDegenerateStreams:
    """The detectors must be quiet and crash-free on streams that never
    reach steady state: empty, single-event, and truncated mid-op."""

    def test_empty_stream(self):
        det = AnomalyDetector()
        assert det.anomalies == []

    def test_single_request_only(self):
        det = AnomalyDetector(min_samples=2)
        det(FpgaRequest(0.0, "t", config="c", op_id=1))
        assert det.anomalies == []

    def test_complete_without_request(self):
        """A stream cut after the request was recorded elsewhere: the
        orphan completion is dropped, not paired with garbage."""
        det = AnomalyDetector(min_samples=2)
        det(FpgaComplete(1.0, "t", config="c", op_id=9))
        det(FpgaComplete(2.0, "u", config="c", op_id=10))
        assert det.anomalies == []

    def test_truncated_mid_operation(self):
        """A healthy stream cut with an op in flight: no alarm fires for
        the op the truncation orphaned."""
        det = AnomalyDetector(min_samples=4, spike_factor=3.0,
                              starvation_factor=10.0)
        for i in range(6):
            complete_op(det, i + 1, start=i * 10.0, latency=1.0)
        det(FpgaRequest(60.0, "cut", config="c", op_id=99))
        assert det.anomalies == []

    def test_replay_with_own_warnings_converges(self):
        """Feeding a recording that already contains the detector's
        warnings back through a fresh detector yields the same verdicts
        (the warnings don't feed back in)."""
        def stream(det):
            for i in range(4):
                complete_op(det, i + 1, start=i * 10.0, latency=1.0)
            complete_op(det, 99, start=100.0, latency=10.0)

        first = AnomalyDetector(min_samples=4, spike_factor=3.0)
        stream(first)
        assert len(first.anomalies) == 1
        second = AnomalyDetector(min_samples=4, spike_factor=3.0)
        stream(second)
        for warning in first.anomalies:
            second(warning)
        assert [a.invariant for a in second.anomalies] == \
            [a.invariant for a in first.anomalies]


class TestBusIntegration:
    def test_publishes_warnings_back_to_the_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, AuditViolation)
        det = AnomalyDetector(bus, min_samples=4, spike_factor=3.0)
        for i in range(4):
            complete_op(det, i + 1, start=i * 10.0, latency=1.0)
        bus.publish(FpgaRequest(100.0, "t", config="c", op_id=99))
        bus.publish(FpgaComplete(110.0, "t", config="c", op_id=99))
        assert [v.invariant for v in seen] == ["anomaly-latency-spike"]
        assert seen[0].severity == "warning"

    def test_validation(self):
        with pytest.raises(ValueError):
            AnomalyDetector(window=1)
