"""Online invariant monitors (:mod:`repro.telemetry.audit`).

Two families of tests:

* **clean streams** — every management policy must audit clean, and a
  replay of its recorded stream (including a JSONL round-trip) must
  reach *exactly* the live verdicts (violation parity, the same
  guarantee ``tests/telemetry/test_parity.py`` gives the metrics);
* **corrupted streams** — each invariant must fire on a stream that is
  deliberately broken in the way it guards against (double allocation,
  reordered evictions, unmatched restores, overlapping port transfers,
  operations that never complete).
"""

import io

import pytest

from repro.core import (
    DynamicLoadingService,
    FixedPartitionService,
    MergedResidentService,
    SaveRestore,
    VariablePartitionService,
)
from repro.osim import DeadlockError, FpgaOp, Kernel, RoundRobin, Task
from repro.sim import Simulator
from repro.telemetry import (
    AuditError,
    Auditor,
    AuditViolation,
    EventBus,
    Evict,
    FpgaRequest,
    Load,
    StateRestore,
    StateSave,
    audit_events,
    read_jsonl,
    to_jsonl,
)

CP = 20e-9  # critical path of every synthetic config in the registry

CLB_CAPACITY = 120  # VF12: 12 x 10


def mixed_tasks():
    return [
        Task("t0", [FpgaOp("a3", 5000), FpgaOp("b3", 5000)]),
        Task("t1", [FpgaOp("c4", 5000), FpgaOp("a3", 5000)]),
        Task("t2", [FpgaOp("b3", 5000)]),
    ]


def audited_run(logged, service, tasks, **kw):
    """Run ``tasks`` with a live lenient auditor on the kernel bus."""
    auditors = []
    run = logged(
        service,
        subscribe=lambda bus: auditors.append(
            Auditor(bus, clb_capacity=CLB_CAPACITY)
        ),
        **kw,
    )
    run.run(tasks)
    return run, auditors[0].finish()


def assert_replay_parity(run, live):
    """Replaying the recorded stream reaches the live verdicts, and so
    does a JSONL round-trip of it."""
    replayed = audit_events(run.log.events, clb_capacity=CLB_CAPACITY)
    assert replayed.summary() == live.summary()
    buf = io.StringIO()
    to_jsonl(run.log.events, buf)
    buf.seek(0)
    decoded = audit_events(read_jsonl(buf), clb_capacity=CLB_CAPACITY)
    assert decoded.summary() == live.summary()
    return replayed


class TestCleanPolicies:
    """Every policy's real stream audits clean, live and replayed."""

    def test_dynamic_loading(self, registry, logged):
        run, live = audited_run(logged, DynamicLoadingService(registry),
                                mixed_tasks())
        assert live.ok and live.n_events > 0
        assert_replay_parity(run, live)

    def test_dynamic_preemptive_state_pairing(self, registry, logged):
        """Save/restore preemption mints state versions that pair up."""
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(),
            fpga_time_slice=50000 * CP,
        )
        tasks = [
            Task("t0", [FpgaOp("seq4", 200000)]),
            Task("t1", [FpgaOp("seq4", 200000)]),
        ]
        run, live = audited_run(logged, svc, tasks)
        assert live.ok
        saves = [e for e in run.log.events if type(e) is StateSave]
        restores = [e for e in run.log.events if type(e) is StateRestore]
        assert saves and restores, "workload must actually preempt"
        assert all(e.version > 0 for e in saves + restores)
        assert_replay_parity(run, live)

    def test_fixed_partitions(self, registry, logged):
        run, live = audited_run(
            logged, FixedPartitionService.equal(registry, 2), mixed_tasks()
        )
        assert live.ok
        assert_replay_parity(run, live)

    def test_variable_partitions_with_gc(self, registry, logged):
        svc = VariablePartitionService(registry, gc="compact")
        run, live = audited_run(logged, svc, mixed_tasks())
        assert live.ok
        assert_replay_parity(run, live)

    def test_merged_exclusive_boot(self, arch, logged):
        """The full-serial boot download is exclusive and untasked: it
        must not trip the port or double-allocation monitors."""
        from repro.core import ConfigRegistry

        # A registry the merged baseline can pack (3+3+4 of 12 columns;
        # the shared fixture's 4 full-height circuits don't all fit).
        reg = ConfigRegistry(arch)
        for name, w in [("a3", 3), ("b3", 3), ("c4", 4)]:
            reg.register_synthetic(name, w, arch.height, critical_path=CP)
        run, live = audited_run(logged, MergedResidentService(reg),
                                mixed_tasks())
        assert live.ok
        assert_replay_parity(run, live)


class TestCorruptedStreams:
    """Each invariant fires on the stream corruption it guards against."""

    def recorded(self, registry, logged):
        run, live = audited_run(logged, DynamicLoadingService(registry),
                                mixed_tasks())
        assert live.ok
        return [e for e in run.log.events if not isinstance(e, AuditViolation)]

    def test_dropped_evict_fires_double_allocation(self, registry, logged):
        """Losing an Evict makes the next Load of that area an overlap."""
        events = self.recorded(registry, logged)
        evicts = [e for e in events if type(e) is Evict]
        assert evicts, "corruption needs a real eviction to drop"
        events.remove(evicts[0])
        auditor = audit_events(events, clb_capacity=CLB_CAPACITY)
        assert auditor.counts.get("double-allocation", 0) >= 1

    def test_reordered_evict_fires_evict_without_load(self, registry, logged):
        """Moving an Evict ahead of every Load breaks causal ordering."""
        events = self.recorded(registry, logged)
        evicts = [e for e in events if type(e) is Evict]
        events.remove(evicts[0])
        corrupted = [evicts[0]] + events
        auditor = audit_events(corrupted, clb_capacity=CLB_CAPACITY)
        assert auditor.counts.get("evict-without-load", 0) >= 1

    def test_corruption_verdicts_survive_jsonl(self, registry, logged):
        """Replay parity holds for dirty streams too, not just clean ones."""
        events = self.recorded(registry, logged)
        events.remove([e for e in events if type(e) is Evict][0])
        direct = audit_events(events, clb_capacity=CLB_CAPACITY)
        buf = io.StringIO()
        to_jsonl(events, buf)
        buf.seek(0)
        decoded = audit_events(read_jsonl(buf), clb_capacity=CLB_CAPACITY)
        assert not direct.ok
        assert decoded.summary() == direct.summary()


class TestInvariantUnits:
    """Hand-built streams force each monitor directly."""

    def test_overlapping_load_fires(self):
        """The acceptance case: two loads claiming intersecting
        rectangles is a double allocation."""
        auditor = Auditor()
        auditor(Load(1.0, "t0", source="svc", handle="a", clbs=30,
                     anchor=(0, 0), shape=(3, 10)))
        auditor(Load(2.0, "t1", source="svc", handle="b", clbs=30,
                     anchor=(2, 0), shape=(3, 10)))
        assert auditor.counts.get("double-allocation") == 1
        assert "overlaps" in auditor.violations[0].message

    def test_disjoint_loads_are_clean(self):
        auditor = Auditor()
        auditor(Load(1.0, "t0", source="svc", handle="a", clbs=30,
                     anchor=(0, 0), shape=(3, 10)))
        auditor(Load(2.0, "t1", source="svc", handle="b", clbs=30,
                     anchor=(3, 0), shape=(3, 10)))
        assert auditor.ok

    def test_reload_of_resident_handle_fires(self):
        auditor = Auditor()
        auditor(Load(1.0, "t0", source="svc", handle="a", clbs=30))
        auditor(Load(2.0, "t1", source="svc", handle="a", clbs=30))
        assert auditor.counts.get("double-allocation") == 1

    def test_exclusive_load_clears_the_ledger(self):
        auditor = Auditor()
        auditor(Load(1.0, "t0", source="svc", handle="a", clbs=30,
                     anchor=(0, 0), shape=(3, 10)))
        auditor(Load(2.0, "t1", source="svc", handle="b", clbs=30,
                     anchor=(0, 0), shape=(3, 10), exclusive=True))
        assert auditor.ok

    def test_capacity_excess_fires(self):
        auditor = Auditor(clb_capacity=50)
        auditor(Load(1.0, "t0", source="svc", handle="a", clbs=30,
                     anchor=(0, 0), shape=(3, 10)))
        auditor(Load(2.0, "t1", source="svc", handle="b", clbs=30,
                     anchor=(5, 0), shape=(3, 10)))
        assert auditor.counts.get("double-allocation") == 1

    def test_restore_without_save_fires(self):
        auditor = Auditor()
        auditor(StateRestore(1.0, "t0", source="svc", handle="a", version=1))
        assert auditor.counts.get("state-pairing") == 1

    def test_restore_with_wrong_version_fires(self):
        auditor = Auditor()
        auditor(StateSave(1.0, "t0", source="svc", handle="a", version=7))
        auditor(StateRestore(2.0, "t0", source="svc", handle="a", version=3))
        assert auditor.counts.get("state-pairing") == 1

    def test_matched_save_restore_is_clean(self):
        auditor = Auditor()
        auditor(StateSave(1.0, "t0", source="svc", handle="a", version=7))
        auditor(StateRestore(2.0, "t0", source="svc", handle="a", version=7))
        assert auditor.ok

    def test_port_overlap_fires(self):
        auditor = Auditor()
        auditor(Load(1.0, "t0", source="svc", handle="a", clbs=30,
                     anchor=(0, 0), shape=(3, 10), seconds=0.5))
        auditor(Load(1.2, "t1", source="svc", handle="b", clbs=30,
                     anchor=(5, 0), shape=(3, 10), seconds=0.5))
        assert auditor.counts.get("port-overlap") == 1

    def test_port_overlap_is_per_source(self):
        """Two boards transfer concurrently without conflict."""
        auditor = Auditor()
        auditor(Load(1.0, "t0", source="board0", handle="a", clbs=30,
                     seconds=0.5))
        auditor(Load(1.2, "t1", source="board1", handle="b", clbs=30,
                     seconds=0.5))
        assert auditor.ok

    def test_untasked_boot_loads_exempt_from_port_overlap(self):
        auditor = Auditor()
        auditor(Load(0.0, source="svc", handle="a", clbs=30,
                     anchor=(0, 0), shape=(3, 10), seconds=0.5))
        auditor(Load(0.0, source="svc", handle="b", clbs=30,
                     anchor=(3, 0), shape=(3, 10), seconds=0.5))
        assert auditor.ok

    def test_stream_deadline_fires(self):
        auditor = Auditor(deadline=1.0)
        auditor(FpgaRequest(0.0, "t0", config="a", op_id=1))
        auditor(Load(5.0, "t1", source="svc", handle="b", clbs=1))
        assert auditor.counts.get("op-deadline") == 1
        # Flagged once, not on every later event.
        auditor(Load(9.0, "t1", source="svc", handle="c", clbs=1))
        assert auditor.counts.get("op-deadline") == 1

    def test_finish_flags_open_ops_as_warnings(self):
        auditor = Auditor()
        auditor(FpgaRequest(0.0, "t0", config="a", op_id=1))
        auditor.finish()
        assert auditor.counts.get("op-never-completed") == 1
        assert auditor.n_errors == 0 and auditor.n_warnings == 1

    def test_strict_mode_publishes_then_raises(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, AuditViolation)
        auditor = Auditor(bus, mode="strict")
        with pytest.raises(AuditError) as exc:
            bus.publish(Load(1.0, "t0", source="svc", handle="a", clbs=1))
            bus.publish(Load(2.0, "t1", source="svc", handle="a", clbs=1))
        assert exc.value.violation.invariant == "double-allocation"
        assert seen and seen[0] is exc.value.violation

    def test_lenient_mode_counts(self):
        bus = EventBus()
        auditor = Auditor(bus, mode="lenient")
        bus.publish(Load(1.0, "t0", source="svc", handle="a", clbs=1))
        bus.publish(Load(2.0, "t1", source="svc", handle="a", clbs=1))
        assert auditor.counts["double-allocation"] == 1
        # The reload also desynchronizes the occupancy cross-check — the
        # two monitors corroborate each other on a dirty stream.
        assert auditor.n_errors >= 1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            Auditor(mode="pedantic")


class TestSimulateIntegration:
    """The facade-level wiring (``VirtualFpga.simulate(audit=...)``)."""

    def make_vf(self):
        from repro.core import VirtualFpga
        from repro.netlist import CIRCUIT_GENERATORS

        vf = VirtualFpga("VF10")
        vf.add_circuit(CIRCUIT_GENERATORS["parity_tree"](4), effort="greedy")
        vf.add_circuit(CIRCUIT_GENERATORS["counter"](3), effort="greedy")
        return vf

    def tasks(self, vf):
        from repro.osim import uniform_workload

        return uniform_workload(vf.circuits, n_tasks=3, ops_per_task=2,
                                cpu_burst=1e-3, cycles=20000, seed=1)

    def test_simulate_audit_clean(self):
        vf = self.make_vf()
        vf.simulate(self.tasks(vf), policy="dynamic", audit="strict")
        assert vf.last_auditor is not None
        assert vf.last_auditor.finish().ok

    def test_kernel_op_deadline_watchdog(self):
        """A stuck service trips the kernel's fail-fast deadline instead
        of simulating the starving system to the bitter end."""
        from repro.osim import FpgaService

        class StuckService(FpgaService):
            def execute(self, task, op):
                yield self.kernel.sim.event()  # never triggers

        sim = Simulator()
        kernel = Kernel(sim, RoundRobin(), StuckService(),
                        context_switch=0.0, op_deadline=0.5)
        kernel.spawn(Task("t", [FpgaOp("c", 1)], configs=["c"]))
        with pytest.raises(DeadlockError, match="liveness watchdog"):
            kernel.run()
        assert sim.now == pytest.approx(0.5)

    def test_kernel_op_deadline_validation(self):
        sim = Simulator()
        from repro.osim import NullFpgaService

        with pytest.raises(ValueError):
            Kernel(sim, RoundRobin(), NullFpgaService(), op_deadline=0.0)
