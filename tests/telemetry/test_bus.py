"""EventBus, EventLog ring buffer, Trace ring buffer, make_source."""

import pytest

from repro.osim import Trace
from repro.telemetry import (
    Dispatch,
    EventBus,
    EventLog,
    Hit,
    Load,
    PageFault,
    SegmentFault,
    TaskDone,
    TelemetryEvent,
    event_type,
    make_source,
)


class TestEventBus:
    def test_typed_subscription_filters(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, Load)
        bus.publish(Load(1.0, "t", handle="x"))
        bus.publish(Hit(2.0, "t", handle="x"))
        assert [type(e) for e in got] == [Load]

    def test_wildcard_gets_everything_in_order(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        bus.publish(Dispatch(1.0, "a"))
        bus.publish(TaskDone(2.0, "a"))
        assert [type(e) for e in got] == [Dispatch, TaskDone]

    def test_base_class_expands_to_subtypes(self):
        """Subscribing to PageFault also delivers SegmentFault (exact-type
        dispatch never walks an MRO at publish time)."""
        bus = EventBus()
        got = []
        bus.subscribe(got.append, PageFault)
        bus.publish(PageFault(1.0, "t", unit="p0"))
        bus.publish(SegmentFault(2.0, "t", unit="s0"))
        assert [type(e) for e in got] == [PageFault, SegmentFault]

    def test_telemetry_event_base_means_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, TelemetryEvent)
        bus.publish(Load(1.0))
        bus.publish(Hit(2.0))
        assert len(got) == 2

    def test_subscriber_order_is_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda e: calls.append("first"), Load)
        bus.subscribe(lambda e: calls.append("second"), Load)
        bus.publish(Load(0.0))
        assert calls == ["first", "second"]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe(got.append, Load)
        bus.publish(Load(1.0))
        sub.close()
        bus.publish(Load(2.0))
        assert len(got) == 1
        assert bus.n_published == 2

    def test_subscription_context_manager(self):
        bus = EventBus()
        got = []
        with bus.subscribe(got.append):
            bus.publish(Hit(1.0))
        bus.publish(Hit(2.0))
        assert len(got) == 1

    def test_n_subscribers_dedupes(self):
        bus = EventBus()
        cb = lambda e: None
        bus.subscribe(cb, Load, Hit)
        assert bus.n_subscribers == 1

    def test_rejects_non_event_type(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(lambda e: None, int)

    def test_event_type_lookup(self):
        assert event_type("Load") is Load
        with pytest.raises(KeyError):
            event_type("NotAnEvent")

    def test_subscribe_all_alias(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe_all(got.append)
        bus.publish(Load(1.0))
        bus.publish(Hit(2.0))
        sub.close()
        bus.publish(Hit(3.0))
        assert [type(e) for e in got] == [Load, Hit]

    def test_base_subscriber_sees_audit_violations(self):
        """AuditViolation is a TelemetryEvent subtype registered *after*
        the core event module loaded: base-class subscribers must still
        receive it (the subclass-dispatch edge the audit layer leans on —
        traces/logs record the auditor's verdicts like any other event)."""
        from repro.telemetry import AuditViolation

        bus = EventBus()
        base_got, exact_got = [], []
        bus.subscribe(base_got.append, TelemetryEvent)
        bus.subscribe(exact_got.append, AuditViolation)
        v = AuditViolation(1.0, "t", invariant="double-allocation",
                           message="boom")
        bus.publish(v)
        assert base_got == [v] and exact_got == [v]

    def test_late_registered_subtype_reaches_base_subscriber(self):
        """A subtype minted after subscription (and even after the bus
        already dispatched its base) still reaches base subscribers —
        the publish cache must not freeze the type lattice."""
        from repro.telemetry import register_event_type

        bus = EventBus()
        got = []
        bus.subscribe(got.append, PageFault)
        bus.publish(PageFault(1.0, "t", unit="p0"))  # warms the cache

        from dataclasses import dataclass

        @register_event_type
        @dataclass(frozen=True)
        class LateFault(PageFault):
            pass

        bus.publish(LateFault(2.0, "t", unit="p1"))
        assert [type(e).__name__ for e in got] == ["PageFault", "LateFault"]

    def test_register_event_type_round_trips(self):
        """Late-registered types decode from their recorded name."""
        from repro.telemetry import register_event_type, registered_event_types

        from dataclasses import dataclass

        @register_event_type
        @dataclass(frozen=True)
        class CustomProbe(TelemetryEvent):
            payload: int = 0

        assert event_type("CustomProbe") is CustomProbe
        assert CustomProbe in registered_event_types()
        # Idempotent; a clashing name with a different class is rejected.
        assert register_event_type(CustomProbe) is CustomProbe

        @dataclass(frozen=True)
        class Impostor(TelemetryEvent):
            pass

        Impostor.__name__ = "CustomProbe"
        with pytest.raises(ValueError):
            register_event_type(Impostor)


class TestMakeSource:
    def test_unique_and_prefixed(self):
        a = make_source("Svc")
        b = make_source("Svc")
        assert a != b
        assert a.startswith("Svc#") and b.startswith("Svc#")


class TestEventLogRing:
    def test_unbounded_by_default(self):
        bus = EventBus()
        log = EventLog(bus)
        for i in range(100):
            bus.publish(Hit(float(i)))
        assert len(log) == 100
        assert log.dropped == 0

    def test_ring_keeps_most_recent(self):
        bus = EventBus()
        log = EventLog(bus, max_events=10)
        for i in range(25):
            bus.publish(Hit(float(i)))
        assert len(log) == 10
        assert log.dropped == 15
        assert [e.time for e in log.events] == [float(i) for i in range(15, 25)]

    def test_of_type_and_count(self):
        log = EventLog()
        log.record(Load(0.0))
        log.record(Hit(1.0))
        log.record(Hit(2.0))
        assert log.count(Hit) == 2
        assert [type(e) for e in log.of_type(Load)] == [Load]

    def test_clear(self):
        log = EventLog(max_events=2)
        for i in range(5):
            log.record(Hit(float(i)))
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)


class TestTraceRing:
    def test_unbounded_default_preserved(self):
        tr = Trace()
        for i in range(5):
            tr.log(float(i), "dispatch", "t")
        assert len(tr.events) == 5 and tr.dropped == 0

    def test_ring_bound_and_dropped(self):
        tr = Trace(max_events=4)
        for i in range(10):
            tr.log(float(i), "dispatch", f"t{i}")
        assert len(tr.events) == 4
        assert tr.dropped == 6
        assert [e.time for e in tr.events] == [6.0, 7.0, 8.0, 9.0]
        # queries operate on the retained window
        assert tr.count("dispatch") == 4

    def test_record_skips_bus_only_events(self):
        tr = Trace()
        tr.record(Hit(1.0, "t"))           # kind=None: bus-only
        tr.record(Load(2.0, "t", handle="x", anchor=(0, 0)))
        assert [e.kind for e in tr.events] == ["fpga-load"]
        assert tr.events[0].detail == "x@(0, 0)"

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            Trace(max_events=-1)
