"""JSONL and Chrome trace_event exporters, and the Profiler."""

import io
import json

import pytest

from repro.telemetry import (
    Dispatch,
    EventBus,
    JsonlExporter,
    Load,
    PageFault,
    Profiler,
    event_type,
    to_chrome_trace,
    to_jsonl,
)

SAMPLE = [
    Dispatch(0.0, "t0", source="kernel"),
    Load(0.001, "t0", source="Svc#1", handle="a3", anchor=(2, 0),
         seconds=0.004, frames=3),
    PageFault(0.01, "t1", source="Svc#1", unit="p2"),
]


class TestJsonl:
    def test_one_valid_object_per_line(self):
        text = to_jsonl(SAMPLE)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        recs = [json.loads(line) for line in lines]
        assert [r["event"] for r in recs] == ["Dispatch", "Load", "PageFault"]
        # every event name resolves back to its class
        for r in recs:
            event_type(r["event"])

    def test_record_schema(self):
        rec = json.loads(to_jsonl([SAMPLE[1]]).strip())
        assert rec == {
            "event": "Load", "time": 0.001, "task": "t0", "source": "Svc#1",
            "handle": "a3", "anchor": [2, 0], "seconds": 0.004, "frames": 3,
            "count": 1, "clbs": 0, "exclusive": False, "shape": [0, 0],
            "mode": "", "frames_written": 0, "cache": "",
        }

    def test_roundtrip_through_jsonl(self):
        from repro.telemetry import read_jsonl
        text = to_jsonl(SAMPLE)
        assert read_jsonl(io.StringIO(text)) == SAMPLE
        assert read_jsonl(text.splitlines()) == SAMPLE

    def test_from_record_drops_unknown_fields(self):
        from repro.telemetry import from_record
        rec = json.loads(to_jsonl([SAMPLE[1]]).strip())
        rec["future_field"] = 42
        assert from_record(rec) == SAMPLE[1]

    def test_write_to_path(self, tmp_path):
        p = tmp_path / "events.jsonl"
        to_jsonl(SAMPLE, str(p))
        assert len(p.read_text().strip().splitlines()) == 3

    def test_streaming_exporter(self):
        buf = io.StringIO()
        bus = EventBus()
        exp = JsonlExporter(buf, bus)
        for ev in SAMPLE:
            bus.publish(ev)
        assert exp.n_written == 3
        assert len(buf.getvalue().strip().splitlines()) == 3


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(SAMPLE, run_name="unit")
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["run"] == "unit"
        # the whole document must survive a JSON round-trip (Perfetto-loadable)
        json.loads(json.dumps(doc))

    def test_duration_vs_instant(self):
        doc = to_chrome_trace(SAMPLE)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
        load = by_name["Load"]
        assert load["ph"] == "X"
        assert load["dur"] == pytest.approx(0.004 * 1e6)
        assert load["ts"] == pytest.approx(0.001 * 1e6)
        fault = by_name["PageFault"]
        assert fault["ph"] == "i" and fault["s"] == "t"

    def test_lanes_get_thread_metadata(self):
        doc = to_chrome_trace(SAMPLE)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"t0", "t1"}  # lanes are task names here
        tids = {e["tid"] for e in meta}
        assert len(tids) == len(meta)  # one tid per lane

    def test_write_to_path(self, tmp_path):
        p = tmp_path / "trace.json"
        to_chrome_trace(SAMPLE, str(p))
        doc = json.loads(p.read_text())
        assert len(doc["traceEvents"]) >= 3


class TestProfiler:
    def test_counts_and_rates(self):
        ticks = iter(range(100))
        prof = Profiler(clock=lambda: float(next(ticks)))
        for ev in SAMPLE:
            prof.record(ev)
        assert prof.n_events == 3
        assert prof.counts == {"Dispatch": 1, "Load": 1, "PageFault": 1}
        assert prof.wall_seconds == 2.0  # ticks 0 -> 2
        assert prof.events_per_second == pytest.approx(1.5)

    def test_sim_seconds_and_subsystems(self):
        prof = Profiler()
        for ev in SAMPLE:
            prof.record(ev)
        assert prof.sim_seconds == {"Load": pytest.approx(0.004)}
        assert prof.by_subsystem() == {"config-port": pytest.approx(0.004)}

    def test_summary_is_json_ready(self):
        bus = EventBus()
        prof = Profiler(bus)
        for ev in SAMPLE:
            bus.publish(ev)
        summary = prof.summary()
        json.loads(json.dumps(summary))
        assert summary["n_events"] == 3
