"""JSONL and Chrome trace_event exporters, and the Profiler."""

import io
import json

import pytest

from repro.telemetry import (
    Dispatch,
    EventBus,
    JsonlExporter,
    Load,
    PageFault,
    Profiler,
    event_type,
    to_chrome_trace,
    to_jsonl,
)

SAMPLE = [
    Dispatch(0.0, "t0", source="kernel"),
    Load(0.001, "t0", source="Svc#1", handle="a3", anchor=(2, 0),
         seconds=0.004, frames=3),
    PageFault(0.01, "t1", source="Svc#1", unit="p2"),
]


class TestJsonl:
    def test_one_valid_object_per_line(self):
        text = to_jsonl(SAMPLE)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        recs = [json.loads(line) for line in lines]
        assert [r["event"] for r in recs] == ["Dispatch", "Load", "PageFault"]
        # every event name resolves back to its class
        for r in recs:
            event_type(r["event"])

    def test_record_schema(self):
        rec = json.loads(to_jsonl([SAMPLE[1]]).strip())
        assert rec == {
            "event": "Load", "time": 0.001, "task": "t0", "source": "Svc#1",
            "handle": "a3", "anchor": [2, 0], "seconds": 0.004, "frames": 3,
            "count": 1, "clbs": 0, "exclusive": False, "shape": [0, 0],
            "mode": "", "frames_written": 0, "cache": "",
        }

    def test_roundtrip_through_jsonl(self):
        from repro.telemetry import read_jsonl
        text = to_jsonl(SAMPLE)
        assert read_jsonl(io.StringIO(text)) == SAMPLE
        assert read_jsonl(text.splitlines()) == SAMPLE

    def test_from_record_drops_unknown_fields(self):
        from repro.telemetry import from_record
        rec = json.loads(to_jsonl([SAMPLE[1]]).strip())
        rec["future_field"] = 42
        assert from_record(rec) == SAMPLE[1]

    def test_write_to_path(self, tmp_path):
        p = tmp_path / "events.jsonl"
        to_jsonl(SAMPLE, str(p))
        assert len(p.read_text().strip().splitlines()) == 3

    def test_streaming_exporter(self):
        buf = io.StringIO()
        bus = EventBus()
        exp = JsonlExporter(buf, bus)
        for ev in SAMPLE:
            bus.publish(ev)
        assert exp.n_written == 3
        assert len(buf.getvalue().strip().splitlines()) == 3


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(SAMPLE, run_name="unit")
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["run"] == "unit"
        # the whole document must survive a JSON round-trip (Perfetto-loadable)
        json.loads(json.dumps(doc))

    def test_duration_vs_instant(self):
        doc = to_chrome_trace(SAMPLE)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
        load = by_name["Load"]
        assert load["ph"] == "X"
        assert load["dur"] == pytest.approx(0.004 * 1e6)
        assert load["ts"] == pytest.approx(0.001 * 1e6)
        fault = by_name["PageFault"]
        assert fault["ph"] == "i" and fault["s"] == "t"

    def test_lanes_get_thread_metadata(self):
        doc = to_chrome_trace(SAMPLE)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"t0", "t1"}  # lanes are task names here
        tids = {e["tid"] for e in meta}
        assert len(tids) == len(meta)  # one tid per lane

    def test_write_to_path(self, tmp_path):
        p = tmp_path / "trace.json"
        to_chrome_trace(SAMPLE, str(p))
        doc = json.loads(p.read_text())
        assert len(doc["traceEvents"]) >= 3


class TestSloAndStageExports:
    """The PR 8 observability surface: queue gauges, per-objective
    error-budget gauges, and the per-source stage CSV."""

    def evaluated_run(self):
        from repro.telemetry import (
            FpgaComplete,
            FpgaRequest,
            MetricsAggregator,
            QueueingDecomposition,
            SloEngine,
            SloObjective,
            Wait,
        )

        agg = MetricsAggregator()
        decomp = QueueingDecomposition()
        engine = SloEngine([
            SloObjective(name="gold", latency=1e-3),
            SloObjective(name="avail", availability=0.999),
        ])
        stream = [
            FpgaRequest(0.0, "t0", config="c", op_id=1),
            Load(0.001, "t0", source="Svc#1", handle="c", seconds=0.004),
            Wait(0.005, "t0", seconds=0.005),
            FpgaComplete(0.01, "t0", config="c", op_id=1),
        ]
        for ev in stream:
            agg(ev)
            decomp(ev)
            engine(ev)
        engine.finish()
        return agg, decomp, engine

    def test_prometheus_queue_gauges(self):
        from repro.telemetry import to_prometheus

        agg, _decomp, _engine = self.evaluated_run()
        text = to_prometheus(agg)
        assert "# TYPE repro_queue_depth_mean gauge" in text
        assert "repro_queue_depth_max 1" in text
        assert "repro_queue_wait_seconds_total 0.005" in text

    def test_prometheus_slo_gauges(self):
        from repro.telemetry import to_prometheus

        agg, _decomp, engine = self.evaluated_run()
        text = to_prometheus(agg, slo=engine)
        assert "# TYPE repro_slo_error_budget_remaining gauge" in text
        assert 'objective="gold"' in text and 'metric="p99"' in text
        assert "# TYPE repro_slo_breaches_total counter" in text
        # The 10 ms op blew the 1 ms objective: one error breach.
        assert 'repro_slo_breaches_total{objective="gold"' in text

    def test_stages_csv(self, tmp_path):
        import csv

        from repro.telemetry import STAGE_FIELDS, stages_to_csv

        _agg, decomp, _engine = self.evaluated_run()
        path = tmp_path / "stages.csv"
        stages_to_csv(decomp, str(path))
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 1
        assert set(rows[0]) == set(STAGE_FIELDS)
        assert float(rows[0]["queue"]) == pytest.approx(0.005)
        assert int(rows[0]["ops"]) == 1

    def test_slo_breach_survives_jsonl(self):
        """Breach events round-trip the recording format like any other
        registered event."""
        from repro.telemetry import SloBreach, read_jsonl

        breach = SloBreach(0.5, source="slo", objective="gold",
                           metric="p99", threshold=1e-3, observed=9e-3,
                           budget_remaining=-0.8, severity="error")
        assert read_jsonl(io.StringIO(to_jsonl([breach]))) == [breach]


class TestProfiler:
    def test_counts_and_rates(self):
        ticks = iter(range(100))
        prof = Profiler(clock=lambda: float(next(ticks)))
        for ev in SAMPLE:
            prof.record(ev)
        assert prof.n_events == 3
        assert prof.counts == {"Dispatch": 1, "Load": 1, "PageFault": 1}
        assert prof.wall_seconds == 2.0  # ticks 0 -> 2
        assert prof.events_per_second == pytest.approx(1.5)

    def test_sim_seconds_and_subsystems(self):
        prof = Profiler()
        for ev in SAMPLE:
            prof.record(ev)
        assert prof.sim_seconds == {"Load": pytest.approx(0.004)}
        assert prof.by_subsystem() == {"config-port": pytest.approx(0.004)}

    def test_sched_and_slo_subsystem_rows(self):
        from repro.telemetry import SloBreach
        from repro.telemetry.events import DeadlineMiss, SchedDecision

        prof = Profiler()
        prof.record(SchedDecision(0.1, "t", source="svc",
                                  strategy="cost-aware", preempt=True))
        prof.record(DeadlineMiss(0.2, "t", deadline=0.1, lateness=0.1))
        prof.record(SloBreach(0.3, source="slo", objective="gold",
                              metric="p99"))
        summary = prof.summary()
        assert summary["sched"] == {
            "counts": {"SchedDecision": 1, "DeadlineMiss": 1}}
        assert summary["slo"] == {"counts": {"SloBreach": 1}}

    def test_no_sched_rows_without_sched_events(self):
        prof = Profiler()
        for ev in SAMPLE:
            prof.record(ev)
        summary = prof.summary()
        assert "sched" not in summary and "slo" not in summary

    def test_summary_is_json_ready(self):
        bus = EventBus()
        prof = Profiler(bus)
        for ev in SAMPLE:
            bus.publish(ev)
        summary = prof.summary()
        json.loads(json.dumps(summary))
        assert summary["n_events"] == 3
