"""Unit tests for the streaming metric primitives.

Histogram quantiles must be *exact* on degenerate streams (empty, single
sample, all-equal, samples sitting on bucket bounds) — the min/max clamp
guarantees it.  Time-weighted gauges must keep a well-defined integral
under out-of-order interleavings (a ``Suspend`` timestamped before the
``Dispatch`` that already advanced the clock).
"""

import pytest

from repro.telemetry import (
    Dispatch,
    Evict,
    FpgaComplete,
    FpgaRequest,
    Histogram,
    Load,
    MetricsAggregator,
    Suspend,
    TimeWeightedGauge,
    aggregate_events,
    log_buckets,
)


class TestLogBuckets:
    def test_spacing_and_range(self):
        bounds = log_buckets(-2, 1)
        assert bounds[0] == pytest.approx(0.01)
        assert bounds[-1] == pytest.approx(10.0)
        assert list(bounds) == sorted(bounds)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            log_buckets(1, 1)


class TestHistogramEdgeCases:
    def test_empty_stream(self):
        h = Histogram()
        assert h.count == 0 and h.total == 0.0 and h.mean == 0.0
        assert h.quantile(0.5) is None
        d = h.as_dict()
        assert d["p50"] is None and d["min"] is None and d["max"] is None

    def test_single_sample_quantiles_exact(self):
        h = Histogram()
        h.observe(3.7e-3)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.7e-3)
        assert h.min == h.max == 3.7e-3

    def test_all_equal_values_exact(self):
        h = Histogram()
        for _ in range(100):
            h.observe(2e-4)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(2e-4)
        assert h.total == pytest.approx(100 * 2e-4)

    def test_sample_on_bucket_boundary(self):
        """``le`` semantics: a value equal to a bound lands in that
        bound's bucket (inclusive upper bound), and stays exact."""
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        h.observe(2.0)
        assert h.bucket_counts == [0, 1, 0, 0]
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_overflow_bucket(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.bucket_counts == [0, 0, 1]
        assert h.quantile(0.99) == pytest.approx(100.0)

    def test_quantiles_monotone_and_in_range(self):
        h = Histogram()
        for i in range(1, 200):
            h.observe(i * 1e-4)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.95, 0.99, 1.0)]
        assert qs == sorted(qs)
        assert all(h.min <= v <= h.max for v in qs)
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_interpolation_within_bucket(self):
        # 10 samples in (1, 2]: p50 interpolates inside that bucket.
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        for i in range(10):
            h.observe(1.1 + i * 0.08)
        p50 = h.quantile(0.5)
        assert h.min <= p50 <= h.max
        assert 1.1 <= p50 <= 1.9

    def test_rejects_bad_q_and_bad_bounds(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_snapshot_is_exhaustive(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        snap = h.snapshot()
        assert snap == {
            "bounds": [1.0, 2.0], "bucket_counts": [1, 1, 0],
            "count": 2, "sum": 2.0, "min": 0.5, "max": 1.5,
        }


class TestTimeWeightedGauge:
    def test_basic_integral(self):
        g = TimeWeightedGauge()
        g.set(0.0, 2.0)
        g.set(10.0, 4.0)   # 2.0 for 10 s
        g.set(20.0, 0.0)   # 4.0 for 10 s
        assert g.integral_at() == pytest.approx(60.0)
        assert g.mean() == pytest.approx(3.0)
        assert g.max_value == 4.0

    def test_add_matches_set(self):
        a, b = TimeWeightedGauge(), TimeWeightedGauge()
        a.set(0.0, 1.0)
        a.set(5.0, 3.0)
        b.set(0.0, 1.0)
        b.add(5.0, 2.0)
        assert a.snapshot() == b.snapshot()

    def test_integral_extends_to_query_time(self):
        g = TimeWeightedGauge()
        g.set(0.0, 5.0)
        assert g.integral_at(4.0) == pytest.approx(20.0)
        assert g.integral == 0.0  # non-mutating

    def test_out_of_order_update_clamped(self):
        """An update timestamped before the last observation applies at
        the last observation: the delta lands, time never runs back."""
        g = TimeWeightedGauge()
        g.set(0.0, 1.0)
        g.set(10.0, 2.0)
        g.add(4.0, -1.0)   # late-arriving decrement
        assert g.value == 1.0
        assert g.last_time == 10.0
        assert g.integral_at() == pytest.approx(10.0)  # never negative dt
        g.set(20.0, 0.0)
        assert g.integral_at() == pytest.approx(10.0 + 1.0 * 10.0)

    def test_empty_gauge(self):
        g = TimeWeightedGauge()
        assert g.integral_at() == 0.0
        assert g.mean() == 0.0
        assert g.first_time is None


class TestAggregatorUnits:
    """Feed hand-built streams; check the folds the policies rely on."""

    def test_exclusive_load_resets_occupancy(self):
        agg = aggregate_events([
            Load(0.0, "", source="s", handle="a", seconds=1.0, clbs=40),
            Load(2.0, "", source="s", handle="b", seconds=1.0, clbs=30),
            Load(4.0, "", source="s", handle="c", seconds=1.0, clbs=50,
                 exclusive=True),
        ])
        assert agg.clb_occupancy.value == 50  # a and b wiped
        assert agg.residency.value == 1
        assert agg.clb_occupancy.max_value == 70

    def test_evict_uses_load_area(self):
        """The evict may omit ``clbs``; the area comes from the load."""
        agg = aggregate_events([
            Load(0.0, "", source="s", handle="a", seconds=1.0, clbs=40),
            Evict(5.0, "", source="s", handle="a", seconds=1.0),
        ])
        assert agg.clb_occupancy.value == 0
        assert agg.clb_occupancy.integral_at() == pytest.approx(40 * 5.0)

    def test_op_latency_pairs_request_complete(self):
        agg = aggregate_events([
            FpgaRequest(1.0, "t", source="kernel", config="c", op_id=1),
            FpgaComplete(4.0, "t", source="kernel", config="c", op_id=1),
        ])
        assert agg.op_latency.count == 1
        assert agg.op_latency.total == pytest.approx(3.0)
        assert agg.inflight.value == 0 and agg.inflight.max_value == 1

    def test_unpaired_complete_ignored(self):
        agg = aggregate_events([
            FpgaComplete(4.0, "t", source="kernel", config="c", op_id=9),
        ])
        assert agg.op_latency.count == 0

    def test_source_filter_keeps_kernel_events(self):
        events = [
            FpgaRequest(0.0, "t", source="kernel", config="c", op_id=1),
            Load(0.1, "t", source="board0", handle="c", seconds=0.5),
            Load(0.2, "t", source="board1", handle="c", seconds=0.7),
            FpgaComplete(1.0, "t", source="kernel", config="c", op_id=1),
        ]
        agg = aggregate_events(events, source="board0")
        assert agg.reconfig_latency.count == 1
        assert agg.reconfig_latency.total == pytest.approx(0.5)
        assert agg.op_latency.count == 1  # kernel events bypass the filter

    def test_elapsed_covers_charge_durations(self):
        """``last_time`` is the charge *end*, not its start instant."""
        agg = aggregate_events([
            Load(0.0, "", source="s", handle="a", seconds=2.0, clbs=10),
        ])
        assert agg.elapsed == pytest.approx(2.0)
        assert agg.port_busy_fraction == pytest.approx(1.0)

    def test_gauge_integral_under_out_of_order_suspend(self):
        """A Suspend/Dispatch pair arriving out of order must not make
        any gauge integral ill-defined (counts still land)."""
        events = [
            FpgaRequest(0.0, "t", source="kernel", config="c", op_id=1),
            Dispatch(2.0, "t", source="kernel"),
            Suspend(1.0, "t", source="kernel"),  # published late
            FpgaComplete(3.0, "t", source="kernel", config="c", op_id=1),
        ]
        agg = aggregate_events(events)
        assert agg.counts["Suspend"] == 1
        assert agg.inflight.integral_at() == pytest.approx(3.0)
        assert agg.op_latency.total == pytest.approx(3.0)

    def test_streaming_equals_batch(self):
        events = [
            Load(0.0, "t", source="s", handle="a", seconds=1.0, clbs=8),
            Evict(3.0, "t", source="s", handle="a", seconds=0.5),
            Load(4.0, "t", source="s", handle="b", seconds=1.0, clbs=6),
        ]
        live = MetricsAggregator()
        for e in events:
            live(e)
        assert live.snapshot() == aggregate_events(events).snapshot()
