"""Aggregator/span parity: the metrics layer must be a pure fold.

The live :class:`~repro.telemetry.MetricsAggregator` and
:class:`~repro.telemetry.SpanBuilder` subscribe to the kernel bus; these
tests replay the independently recorded :class:`~repro.telemetry.EventLog`
through :func:`~repro.telemetry.aggregate_events` /
:func:`~repro.telemetry.build_spans` and demand *exact* equality with the
live state — histogram bucket counts, gauge integrals, span phase
durations — across every management policy (dynamic loading,
partitioning, overlay, segmentation, pagination, I/O multiplexing).  A
JSONL round trip must preserve the fold bit-for-bit too: that is what
makes ``repro report --input`` trustworthy.
"""

import io

import pytest

from repro.core import (
    ConfigRegistry,
    DynamicLoadingService,
    FixedPartitionService,
    MergedResidentService,
    MultiDeviceService,
    NonPreemptableService,
    OverlayService,
    PagedVfpgaService,
    SaveRestore,
    SegmentedVfpgaService,
    SoftwareOnlyService,
    VariablePartitionService,
    make_paged_circuit,
    make_segmented_circuit,
)
from repro.osim import FpgaOp, Task, uniform_workload
from repro.telemetry import (
    Evict,
    MetricsAggregator,
    SpanBuilder,
    aggregate_events,
    build_spans,
    read_jsonl,
    to_jsonl,
)

CP = 20e-9  # critical path of every synthetic config in the registry


def op_time(cycles):
    return cycles * CP


def live_run(logged, service, tasks, **kw):
    """Run with a live aggregator + span builder subscribed before the
    kernel exists (boot downloads publish during attach)."""
    state = {}

    def subscribe(bus):
        state["agg"] = MetricsAggregator(bus)
        state["spans"] = SpanBuilder(bus)

    run = logged(service, subscribe=subscribe, **kw)
    run.run(tasks)
    return run, state["agg"], state["spans"]


def assert_parity(run, agg, spans):
    """Live fold state == replay of the recorded stream, exactly."""
    replayed = aggregate_events(run.log.events)
    assert replayed.snapshot() == agg.snapshot()
    rebuilt = build_spans(run.log.events)
    assert rebuilt.spans == spans.spans
    assert rebuilt.open_spans == spans.open_spans
    assert rebuilt.n_orphans == spans.n_orphans
    return replayed, rebuilt


def assert_jsonl_parity(run, agg, spans):
    """The same equality must survive serialization to JSONL and back —
    the ``repro report --input`` path."""
    events = read_jsonl(io.StringIO(to_jsonl(run.log.events)))
    assert aggregate_events(events).snapshot() == agg.snapshot()
    assert build_spans(events).spans == spans.spans


def mixed_tasks():
    return [
        Task("t0", [FpgaOp("a3", 5000), FpgaOp("b3", 5000)]),
        Task("t1", [FpgaOp("c4", 5000), FpgaOp("a3", 5000)]),
        Task("t2", [FpgaOp("b3", 5000, io_words=500)]),
    ]


class TestPolicyParity:
    def test_dynamic_loading(self, registry, logged):
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry), mixed_tasks())
        assert_parity(run, agg, spans)
        assert_jsonl_parity(run, agg, spans)
        assert agg.reconfig_latency.count > 0
        assert agg.op_latency.count == 5
        assert len(spans.spans) == 5 and not spans.open_spans

    def test_dynamic_loading_preemptive(self, registry, logged):
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(), fpga_time_slice=op_time(50000)
        )
        run, agg, spans = live_run(
            logged, svc,
            [Task("ta", [FpgaOp("seq4", 200000)]),
             Task("tb", [FpgaOp("seq4", 200000)])])
        assert_parity(run, agg, spans)
        # Preemption cost lands in the right span phases.
        assert any(s.n_preemptions > 0 for s in spans.spans)
        assert any(s.state_seconds > 0 for s in spans.spans)

    def test_fixed_partitioning(self, registry, logged):
        run, agg, spans = live_run(
            logged, FixedPartitionService(registry, [4, 4, 4]), mixed_tasks())
        assert_parity(run, agg, spans)

    def test_variable_partitioning(self, registry, logged):
        run, agg, spans = live_run(
            logged, VariablePartitionService(registry),
            mixed_tasks() + [Task("t3", [FpgaOp("c4", 5000)])])
        assert_parity(run, agg, spans)
        assert_jsonl_parity(run, agg, spans)
        assert len(spans.spans) == 6

    def test_pagination(self, arch, logged):
        reg = ConfigRegistry(arch)
        circ = make_paged_circuit(reg, "virt", n_pages=6, page_width=3,
                                  pattern="sequential", seed=1)
        run, agg, spans = live_run(
            logged, PagedVfpgaService(reg, [circ], frame_width=3),
            [Task("t", [FpgaOp("virt", 8)])])
        assert_parity(run, agg, spans)
        assert sum(s.n_page_faults for s in spans.spans) > 0

    def test_segmentation(self, arch, logged):
        reg = ConfigRegistry(arch)
        circ = make_segmented_circuit(
            reg, "virt", widths=[3, 4, 2, 3, 4], pattern="sequential", seed=1
        )
        run, agg, spans = live_run(
            logged, SegmentedVfpgaService(reg, [circ], replacement="lru"),
            [Task("t", [FpgaOp("virt", 10)])])
        assert_parity(run, agg, spans)
        assert_jsonl_parity(run, agg, spans)
        # SegmentFault subclasses PageFault but spans dispatch on the
        # exact type: segment faults must not double-count as page faults.
        assert sum(s.n_segment_faults for s in spans.spans) > 0
        assert sum(s.n_page_faults for s in spans.spans) == 0

    def test_io_multiplexing(self, registry, logged):
        """Pin-multiplexed transfers (PortTransfer) charge io_seconds."""
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry),
            [Task("t", [FpgaOp("a3", 5000, io_words=2000)])])
        assert_parity(run, agg, spans)
        assert sum(s.io_seconds for s in spans.spans) > 0

    def test_merged_resident_boot_load(self, arch, logged):
        """Boot downloads publish during attach; the full-serial boot is
        ``exclusive`` and seeds the occupancy gauge."""
        reg = ConfigRegistry(arch)
        reg.register_synthetic("a3", 3, arch.height, critical_path=CP)
        reg.register_synthetic("b3", 3, arch.height, critical_path=CP)
        run, agg, spans = live_run(
            logged, MergedResidentService(reg),
            [Task("t", [FpgaOp("a3", 100), FpgaOp("b3", 100)])])
        assert_parity(run, agg, spans)
        assert agg.clb_occupancy.max_value == 2 * 3 * arch.height

    def test_overlay_boot_load(self, registry, logged):
        run, agg, spans = live_run(
            logged, OverlayService(registry, resident_names=["a3", "b3"]),
            [Task("t", [FpgaOp("a3", 100), FpgaOp("c4", 100)])])
        assert_parity(run, agg, spans)

    def test_software_only(self, registry, logged):
        run, agg, spans = live_run(
            logged, SoftwareOnlyService(registry, slowdown=10.0),
            [Task("t", [FpgaOp("a3", 1000)])])
        assert_parity(run, agg, spans)
        assert agg.exec_latency.total == pytest.approx(10.0 * op_time(1000))

    def test_non_preemptable(self, registry, logged):
        run, agg, spans = live_run(
            logged, NonPreemptableService(registry),
            [Task("ta", [FpgaOp("a3", 100000)]),
             Task("tb", [FpgaOp("b3", 100000)])])
        assert_parity(run, agg, spans)

    def test_generated_workload(self, registry, logged):
        tasks = uniform_workload(
            ["a3", "b3", "c4"], n_tasks=8, ops_per_task=3,
            cpu_burst=1e-4, cycles=5000, seed=3,
        )
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry), tasks)
        assert_parity(run, agg, spans)
        assert_jsonl_parity(run, agg, spans)
        assert len(spans.spans) == 8 * 3

    def test_multi_board(self, registry, logged):
        run, agg, spans = live_run(
            logged, MultiDeviceService(registry, 2),
            [Task(f"t{i}", [FpgaOp("a3", 50000)]) for i in range(4)])
        assert_parity(run, agg, spans)
        assert len(spans.spans) == 4
        # Per-board aggregation: filter by each board's source.
        svc = run.service
        for board in svc.boards:
            per = aggregate_events(run.log.events, source=board.source)
            assert per.reconfig_latency.count == board.metrics.n_loads


class TestCrossChecks:
    """The fold must agree with other, independently derived views."""

    def test_span_phases_match_task_accounting(self, registry, logged):
        tasks = mixed_tasks()
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry), tasks)
        by_task = spans.by_task()
        for t in tasks:
            mine = by_task[t.name]
            assert sum(s.exec_seconds for s in mine) == \
                pytest.approx(t.accounting.fpga_exec_time)
            assert sum(s.io_seconds for s in mine) == \
                pytest.approx(t.accounting.fpga_io_time)
            assert len(mine) == t.accounting.n_fpga_ops

    def test_histogram_totals_match_service_metrics(self, registry, logged):
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry), mixed_tasks())
        m = run.service.metrics
        assert agg.reconfig_latency.count == m.n_loads
        # ServiceMetrics.load_time counts evictions as port time too.
        evict_seconds = sum(e.seconds for e in run.log.of_type(Evict))
        assert agg.reconfig_latency.total + evict_seconds == \
            pytest.approx(m.load_time)
        assert agg.exec_latency.total == pytest.approx(m.exec_time)
        assert agg.wait_latency.total == pytest.approx(m.wait_time)

    def test_op_ids_unique_and_match_requests(self, registry, logged):
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry), mixed_tasks())
        ids = [s.op_id for s in spans.spans]
        assert len(set(ids)) == len(ids)
        assert all(i > 0 for i in ids)
        assert sorted(ids) == list(range(1, len(ids) + 1))

    def test_occupancy_never_exceeds_device(self, registry, logged):
        run, agg, spans = live_run(
            logged, VariablePartitionService(registry),
            mixed_tasks() + [Task("t3", [FpgaOp("c4", 5000)])])
        assert 0 < agg.clb_occupancy.max_value <= registry.arch.n_clbs
        assert agg.clb_occupancy.integral_at(agg.last_time) > 0

    def test_port_busy_within_elapsed(self, registry, logged):
        run, agg, spans = live_run(
            logged, DynamicLoadingService(registry), mixed_tasks())
        assert 0 < agg.port_busy_seconds
        assert 0 < agg.port_busy_fraction <= 1.0
