"""Bus/metrics parity: every service's counters must be derivable from
its published event stream.

This is the refactor's safety net.  ``ServiceMetrics`` is now *derived*
state (a :class:`~repro.telemetry.MetricsRecorder` subscribed to the
kernel bus); these tests replay the independently recorded
:class:`~repro.telemetry.EventLog` through a fresh recorder and demand
exact equality with the live metrics, across every management policy the
benchmarks exercise (e1 dynamic loading, e4 partitioning, e8
pagination/segmentation, plus the baselines and multi-board systems).
Task accounting is still hand-filled at the charge sites, which gives a
second, bus-independent cross-check.
"""

import json

import pytest

from repro.core import (
    ConfigRegistry,
    DynamicLoadingService,
    FixedPartitionService,
    MergedResidentService,
    MultiDeviceService,
    NonPreemptableService,
    OverlayService,
    PagedVfpgaService,
    SaveRestore,
    SegmentedVfpgaService,
    SoftwareOnlyService,
    VariablePartitionService,
    make_paged_circuit,
    make_segmented_circuit,
)
from repro.osim import FpgaOp, Task, uniform_workload
from repro.telemetry import (
    BoardDispatch,
    Load,
    PageFault,
    SegmentFault,
    SimStep,
    derive_metrics,
    to_chrome_trace,
)

CP = 20e-9  # critical path of every synthetic config in the registry


def op_time(cycles):
    return cycles * CP


def assert_parity(run):
    """Live metrics == metrics replayed from the recorded stream."""
    derived = derive_metrics(run.log.events, source=run.service.source)
    assert derived.as_dict() == run.service.metrics.as_dict()
    return derived


def mixed_tasks():
    return [
        Task("t0", [FpgaOp("a3", 5000), FpgaOp("b3", 5000)]),
        Task("t1", [FpgaOp("c4", 5000), FpgaOp("a3", 5000)]),
        Task("t2", [FpgaOp("b3", 5000, io_words=500)]),
    ]


class TestPolicyParity:
    def test_dynamic_loading(self, registry, logged):
        """e1-style workload: demand loading with evictions and I/O."""
        run = logged(DynamicLoadingService(registry))
        run.run(mixed_tasks())
        derived = assert_parity(run)
        assert derived.n_loads > 0 and derived.n_ops == 5

    def test_dynamic_loading_preemptive(self, registry, logged):
        """Time-sliced fabric with state save/restore on seq4."""
        svc = DynamicLoadingService(
            registry, preemption=SaveRestore(), fpga_time_slice=op_time(50000)
        )
        run = logged(svc)
        run.run([Task("ta", [FpgaOp("seq4", 200000)]),
                 Task("tb", [FpgaOp("seq4", 200000)])])
        derived = assert_parity(run)
        assert derived.n_preemptions > 0
        assert derived.n_state_saves > 0 and derived.n_state_restores > 0

    def test_fixed_partitioning(self, registry, logged):
        run = logged(FixedPartitionService(registry, [4, 4, 4]))
        run.run(mixed_tasks())
        assert_parity(run)

    def test_variable_partitioning(self, registry, logged):
        """e4-style: variable partitions with relocation/compaction."""
        run = logged(VariablePartitionService(registry))
        run.run(mixed_tasks() + [Task("t3", [FpgaOp("c4", 5000)])])
        derived = assert_parity(run)
        assert derived.n_ops == 6

    def test_pagination(self, arch, logged):
        """e8-style: demand paging; faults must round-trip the bus."""
        reg = ConfigRegistry(arch)
        circ = make_paged_circuit(reg, "virt", n_pages=6, page_width=3,
                                  pattern="sequential", seed=1)
        run = logged(PagedVfpgaService(reg, [circ], frame_width=3))
        run.run([Task("t", [FpgaOp("virt", 8)])])
        derived = assert_parity(run)
        assert derived.n_page_faults > 0
        assert run.log.count(PageFault) == derived.n_page_faults

    def test_segmentation(self, arch, logged):
        reg = ConfigRegistry(arch)
        circ = make_segmented_circuit(
            reg, "virt", widths=[3, 4, 2, 3, 4], pattern="sequential", seed=1
        )
        run = logged(SegmentedVfpgaService(reg, [circ], replacement="lru"))
        run.run([Task("t", [FpgaOp("virt", 10)])])
        derived = assert_parity(run)
        # SegmentFault subclasses PageFault; both views must agree.
        assert run.log.count(SegmentFault) == derived.n_page_faults > 0

    def test_merged_resident_boot_load(self, arch, logged):
        """Boot downloads happen during attach — the log must already be
        subscribed (regression guard for subscriber ordering)."""
        reg = ConfigRegistry(arch)
        reg.register_synthetic("a3", 3, arch.height, critical_path=CP)
        reg.register_synthetic("b3", 3, arch.height, critical_path=CP)
        run = logged(MergedResidentService(reg))
        run.run([Task("t", [FpgaOp("a3", 100), FpgaOp("b3", 100)])])
        derived = assert_parity(run)
        assert derived.n_loads > 0  # the boot configuration itself
        assert any(e.task == "" for e in run.log.of_type(Load))

    def test_overlay_boot_load(self, registry, logged):
        run = logged(OverlayService(registry, resident_names=["a3", "b3"]))
        run.run([Task("t", [FpgaOp("a3", 100), FpgaOp("c4", 100)])])
        assert_parity(run)

    def test_software_only(self, registry, logged):
        run = logged(SoftwareOnlyService(registry, slowdown=10.0))
        run.run([Task("t", [FpgaOp("a3", 1000)])])
        derived = assert_parity(run)
        assert derived.exec_time == pytest.approx(10.0 * op_time(1000))

    def test_non_preemptable(self, registry, logged):
        run = logged(NonPreemptableService(registry))
        run.run([Task("ta", [FpgaOp("a3", 100000)]),
                 Task("tb", [FpgaOp("b3", 100000)])])
        assert_parity(run)

    def test_generated_workload(self, registry, logged):
        """A larger randomized workload, as the benchmarks produce."""
        tasks = uniform_workload(
            ["a3", "b3", "c4"], n_tasks=8, ops_per_task=3,
            cpu_burst=1e-4, cycles=5000, seed=3,
        )
        run = logged(DynamicLoadingService(registry))
        run.run(tasks)
        derived = assert_parity(run)
        assert derived.n_ops == 8 * 3


class TestAccountingCrossCheck:
    """Task accounting is charged by hand at the same sites that publish;
    summing it is a bus-independent check on the derived totals."""

    def test_exec_and_op_totals(self, registry, logged):
        tasks = mixed_tasks()
        run = logged(DynamicLoadingService(registry))
        run.run(tasks)
        derived = derive_metrics(run.log.events, source=run.service.source)
        assert sum(t.accounting.fpga_exec_time for t in tasks) == \
            pytest.approx(derived.exec_time)
        assert sum(t.accounting.n_fpga_ops for t in tasks) == derived.n_ops
        assert sum(t.accounting.fpga_io_time for t in tasks) == \
            pytest.approx(derived.io_time)


class TestMultiBoard:
    def test_per_source_parity(self, registry, logged):
        """One bus carries several boards' streams; the per-source filter
        must separate them exactly."""
        svc = MultiDeviceService(registry, 2)
        run = logged(svc)
        run.run([Task(f"t{i}", [FpgaOp("a3", 50000)]) for i in range(4)])
        for board in svc.boards:
            derived = derive_metrics(run.log.events, source=board.source)
            assert derived.as_dict() == board.metrics.as_dict()
        dispatches = run.log.of_type(BoardDispatch)
        assert len(dispatches) == 4
        assert {e.source for e in dispatches} == {svc.source}


class TestKernelTelemetryOptions:
    def test_sim_steps_opt_in(self, registry, logged):
        run = logged(DynamicLoadingService(registry), telemetry_steps=True)
        run.run([Task("t", [FpgaOp("a3", 100)])])
        steps = run.log.of_type(SimStep)
        assert steps
        assert all(isinstance(e.queue_depth, int) for e in steps)

    def test_sim_steps_off_by_default(self, registry, logged):
        run = logged(DynamicLoadingService(registry))
        run.run([Task("t", [FpgaOp("a3", 100)])])
        assert run.log.count(SimStep) == 0

    def test_kernel_trace_ring(self, registry, logged):
        run = logged(DynamicLoadingService(registry), max_trace_events=5)
        run.run(mixed_tasks())
        trace = run.kernel.trace
        assert len(trace.events) == 5
        assert trace.dropped > 0
        # Parity is unaffected: metrics fold events as they pass, the
        # ring only bounds what is *retained*.
        assert_parity(run)


class TestEndToEndExport:
    def test_chrome_trace_of_real_run(self, registry, logged, tmp_path):
        """The quickstart path: run, export, re-load as strict JSON."""
        run = logged(VariablePartitionService(registry))
        run.run(mixed_tasks())
        path = tmp_path / "trace.json"
        to_chrome_trace(run.log.events, str(path), run_name="parity")
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        assert doc["otherData"]["run"] == "parity"
        # Durations are in microseconds and non-negative.
        assert all(e["dur"] >= 0 for e in doc["traceEvents"] if e["ph"] == "X")
