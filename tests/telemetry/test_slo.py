"""Per-source SLO engine and queueing decomposition
(:mod:`repro.telemetry.slo`).

Three layers of coverage: the declarative spec surface
(:func:`parse_slo_spec`), the engine's SRE math on hand-built synthetic
streams (latching, error budgets, rolling windows, burn rates,
availability-at-finish), and the two system-level contracts the tentpole
promises — *parity* (the engine is a pure fold: live state equals replay
state over the recorded stream, across every management policy) and
*inertness* (attaching the observers changes nothing but the breach
events they themselves publish).
"""

import io

import pytest

from repro.core import make_service
from repro.telemetry import (
    FpgaComplete,
    FpgaRequest,
    Load,
    MetricsAggregator,
    QueueingDecomposition,
    SloBreach,
    SloEngine,
    SloObjective,
    Wait,
    decompose_events,
    evaluate_slo,
    parse_slo_spec,
    read_jsonl,
    to_jsonl,
)
from repro.telemetry.events import DeadlineMiss, TaskDone
from tests.core.test_engine_parity import (
    contended_build,
    overlay_build,
    paged_build,
    segmented_build,
)


def op(engine, task, start, latency, source="svc", op_id=0):
    """One served operation: request, an attributing service event,
    completion ``latency`` later."""
    engine(FpgaRequest(start, task, config="c", op_id=op_id))
    engine(Load(start, task, source=source, handle=f"h{op_id}"))
    engine(FpgaComplete(start + latency, task, config="c", op_id=op_id))


class TestParseSpec:
    def test_latency_only(self):
        obj = parse_slo_spec("p99<=5e-3")
        assert obj.name == "p99<=5e-3"
        assert obj.latency == 5e-3 and obj.percentile == 0.99
        assert obj.miss_rate is None and obj.availability is None
        assert obj.task == "*" and obj.source == "*"

    def test_full_named_spec(self):
        obj = parse_slo_spec(
            "gold:p95<=2e-3,miss-rate<=0.01,availability>=0.999,"
            "task=tenant*,source=svc*,window=0.05,min-samples=3,burn=14"
        )
        assert obj.name == "gold"
        assert obj.latency == 2e-3 and obj.percentile == 0.95
        assert obj.miss_rate == 0.01 and obj.availability == 0.999
        assert obj.task == "tenant*" and obj.source == "svc*"
        assert obj.window == 0.05 and obj.min_samples == 3
        assert obj.burn_factor == 14

    def test_fractional_percentile(self):
        obj = parse_slo_spec("p99.9<=1e-3")
        assert obj.percentile == pytest.approx(0.999)
        assert obj.latency_metric == "p99.9"

    def test_name_scope_key(self):
        assert parse_slo_spec("p99<=1,name=gold").name == "gold"

    @pytest.mark.parametrize("bad", [
        "",
        "p200<=1",            # percentile out of range
        "pxx<=1",             # unparseable percentile
        "throughput<=3",      # unknown <= metric
        "latency>=5",         # unknown >= metric
        "frobnicate=3",       # unknown scope key
        "just-words",         # no comparison, no key=value
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_slo_spec(bad)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SloObjective(name="", latency=1.0)
        with pytest.raises(ValueError):
            SloObjective(name="x", latency=-1.0)
        with pytest.raises(ValueError):
            SloObjective(name="x", percentile=1.5)
        with pytest.raises(ValueError):
            SloObjective(name="x", min_samples=0)


class TestLatencyObjective:
    def test_breach_latches_once(self):
        """Violating repeatedly while already violated emits one event."""
        eng = SloEngine([SloObjective(name="o", latency=1.0)])
        for i in range(3):
            op(eng, f"t{i}", start=10.0 * i, latency=5.0, op_id=i)
        assert len(eng.breaches) == 1
        b = eng.breaches[0]
        assert b.metric == "p99" and b.severity == "error"
        assert b.observed == 5.0 and b.threshold == 1.0
        assert eng.breached

    def test_window_rearms_the_latch(self):
        """Recovery inside the rolling window clears the latch; the next
        violation is a fresh crossing."""
        eng = SloEngine([SloObjective(name="o", latency=1.0, window=10.0)])
        op(eng, "a", start=0.0, latency=2.0, op_id=1)       # breach 1
        op(eng, "b", start=20.0, latency=0.1, op_id=2)      # old op pruned
        op(eng, "c", start=30.0, latency=3.0, op_id=3)      # breach 2
        assert [b.observed for b in eng.breaches] == [2.0, 3.0]

    def test_min_samples_gate(self):
        """Early operations always look slow; they must not alarm."""
        eng = SloEngine([SloObjective(name="o", latency=1.0,
                                      min_samples=4)])
        for i in range(3):
            op(eng, f"t{i}", start=float(i), latency=9.0, op_id=i)
        assert eng.breaches == []

    def test_error_budget_accounting(self):
        """p90 target: 10% of ops may be bad.  One bad in ten spends the
        whole budget."""
        eng = SloEngine([SloObjective(name="o", latency=1.0,
                                      percentile=0.9)])
        for i in range(9):
            op(eng, f"t{i}", start=float(i), latency=0.1, op_id=i)
        op(eng, "slow", start=100.0, latency=5.0, op_id=99)
        rows = {r["metric"]: r for r in eng.status()}
        assert rows["p90"]["budget_remaining"] == pytest.approx(0.0)
        assert rows["p90"]["samples"] == 10

    def test_task_selector_scopes_samples(self):
        eng = SloEngine([SloObjective(name="o", latency=1.0,
                                      task="tenant*")])
        op(eng, "tenant0", start=0.0, latency=0.1, op_id=1)
        op(eng, "other", start=1.0, latency=99.0, op_id=2)
        (row,) = eng.status()
        assert row["samples"] == 1 and not row["breached"]

    def test_source_selector_uses_serving_source(self):
        """The serving source is learned from the service's own events
        between request and completion."""
        eng = SloEngine([SloObjective(name="o", latency=1.0,
                                      source="svcA")])
        op(eng, "a", start=0.0, latency=9.0, source="svcB", op_id=1)
        assert eng.status()[0]["samples"] == 0
        op(eng, "b", start=10.0, latency=9.0, source="svcA", op_id=2)
        assert eng.status()[0]["samples"] == 1
        assert len(eng.breaches) == 1


class TestMissRateAndAvailability:
    def test_miss_rate_breach(self):
        eng = SloEngine([SloObjective(name="o", miss_rate=0.25)])
        for i in range(3):
            eng(TaskDone(float(i), f"t{i}"))
        eng(DeadlineMiss(3.0, "t3", deadline=1.0, lateness=2.0))
        assert eng.breaches == []       # 1/4 == 0.25 is still within
        eng(DeadlineMiss(4.0, "t4", deadline=1.0, lateness=3.0))
        assert [b.metric for b in eng.breaches] == ["miss-rate"]
        assert eng.breaches[0].observed == pytest.approx(0.4)

    def test_availability_judged_at_finish(self):
        """Open operations count as failed only once the stream ends."""
        eng = SloEngine([SloObjective(name="o", availability=0.9)])
        for i in range(10):
            eng(FpgaRequest(float(i), f"t{i}", config="c", op_id=i))
        for i in range(8):
            eng(FpgaComplete(float(i) + 0.5, f"t{i}", config="c", op_id=i))
        assert eng.breaches == []
        eng.finish()
        assert [b.metric for b in eng.breaches] == ["availability"]
        assert eng.breaches[0].observed == pytest.approx(0.8)

    def test_finish_is_idempotent(self):
        eng = SloEngine([SloObjective(name="o", availability=1.0)])
        eng(FpgaRequest(0.0, "t", config="c", op_id=1))
        eng.finish()
        eng.finish()
        assert len(eng.breaches) == 1


class TestBurnRate:
    def test_burn_alert_is_a_warning_not_an_exit(self):
        """Half the ops are bad: the p50 still holds (median is good) but
        the budget burns at twice the allowed rate — a warning that must
        not flip the CLI's error exit."""
        eng = SloEngine([SloObjective(name="o", latency=1.0,
                                      percentile=0.5, window=120.0,
                                      burn_factor=0.5)])
        for i in range(3):
            op(eng, f"g{i}", start=2.0 * i, latency=0.1, op_id=10 + i)
            op(eng, f"b{i}", start=2.0 * i + 1, latency=5.0, op_id=20 + i)
        burns = [b for b in eng.breaches if b.metric == "burn-rate"]
        assert burns and burns[0].severity == "warning"
        assert not any(b.severity == "error" for b in eng.breaches)
        assert not eng.breached


class TestPurity:
    def test_recorded_breaches_are_ignored_on_replay(self):
        """Re-evaluating an already-evaluated recording converges: the
        engine's own output does not feed back in."""
        events = []

        def run(engine):
            op(engine, "t", start=0.0, latency=9.0, op_id=1)

        live = SloEngine([SloObjective(name="o", latency=1.0)])
        run(live)
        events = [FpgaRequest(0.0, "t", config="c", op_id=1),
                  Load(0.0, "t", source="svc", handle="h1"),
                  FpgaComplete(9.0, "t", config="c", op_id=1)]
        replay = evaluate_slo(events + list(live.breaches),
                              [SloObjective(name="o", latency=1.0)],
                              finish=False)
        assert replay.snapshot() == live.snapshot()

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SloEngine([SloObjective(name="o", latency=1.0),
                       SloObjective(name="o", miss_rate=0.1)])


def canon(events):
    """Events as comparable tuples, ignoring process-global sources."""
    return [
        (type(e).__name__,
         tuple(sorted((k, v) for k, v in vars(e).items() if k != "source")))
        for e in events
    ]


def fresh_objectives():
    return [
        SloObjective(name="tight", latency=1e-4, percentile=0.95,
                     min_samples=2),
        SloObjective(name="avail", availability=0.999),
        SloObjective(name="deadlines", miss_rate=0.0),
    ]


POLICY_BUILDS = [
    ("dynamic", contended_build()),
    ("fixed", contended_build(n_partitions=2)),
    ("variable", contended_build(hold_mode="op")),
    ("overlay", overlay_build()),
    ("paged", paged_build()),
    ("segmented", segmented_build()),
    ("multi", contended_build(n_devices=2)),
]


class TestPolicyParityAndInertness:
    """The two tentpole contracts, across every management policy."""

    @pytest.mark.parametrize("policy,build", POLICY_BUILDS,
                             ids=[p for p, _b in POLICY_BUILDS])
    def test_live_equals_replay_and_observer_is_inert(self, policy, build,
                                                      logged):
        # -- instrumented run --------------------------------------------
        registry, tasks, kw = build()
        engine = SloEngine(fresh_objectives())
        decomp = QueueingDecomposition()

        def subscribe(bus):
            bus.subscribe_all(engine)
            bus.subscribe_all(decomp)
            engine.bus = bus        # republish breaches onto the stream

        run = logged(make_service(policy, registry, **kw),
                     subscribe=subscribe)
        run.run(tasks)
        engine.finish()

        # -- parity: replaying the recording reproduces the engine -------
        replay = evaluate_slo(run.log.events, fresh_objectives())
        assert replay.snapshot() == engine.snapshot()
        assert [b.to_record() for b in replay.breaches] == \
            [b.to_record() for b in engine.breaches]
        assert decompose_events(run.log.events).snapshot() == \
            decomp.snapshot()

        # -- inertness: same run without observers, event for event ------
        registry2, tasks2, kw2 = build()
        bare = logged(make_service(policy, registry2, **kw2))
        bare.run(tasks2)
        observed = [e for e in run.log.events
                    if not isinstance(e, SloBreach)]
        assert canon(observed) == canon(bare.log.events)
        # The contended workloads actually exercise the tight objective.
        if policy not in ("paged", "segmented"):
            assert engine.breached

    def test_jsonl_round_trip_preserves_evaluation(self, logged):
        """Recording to JSONL and back is evaluation-lossless, breach
        events included (SloBreach is a registered event type)."""
        registry, tasks, kw = contended_build()()
        engine = SloEngine(fresh_objectives())

        def subscribe(bus):
            bus.subscribe_all(engine)
            engine.bus = bus

        run = logged(make_service("dynamic", registry, **kw),
                     subscribe=subscribe)
        run.run(tasks)
        engine.finish()
        decoded = read_jsonl(io.StringIO(to_jsonl(run.log.events)))
        assert canon(decoded) == canon(run.log.events)
        assert any(isinstance(e, SloBreach) for e in decoded)
        assert evaluate_slo(decoded, fresh_objectives()).snapshot() == \
            engine.snapshot()


class TestQueueingDecomposition:
    def run_decomposed(self, logged):
        registry, tasks, kw = contended_build()()
        decomp = QueueingDecomposition()
        run = logged(make_service("dynamic", registry, **kw),
                     subscribe=lambda bus: bus.subscribe_all(decomp))
        run.run(tasks)
        return run, decomp

    def test_rows_cover_every_operation(self, logged):
        run, decomp = self.run_decomposed(logged)
        rows = decomp.rows()
        assert rows, "contended workload must produce operations"
        assert sum(r["ops"] for r in rows) == len(decomp.spans.spans)
        for row in rows:
            for stage in ("queue", "reconfig", "service"):
                assert row[stage] >= 0.0
                assert 0.0 <= row[f"{stage}_share"]
        # The contended workload queues: wait time is a real stage.
        assert sum(r["queue"] for r in rows) > 0.0
        assert sum(r["reconfig"] for r in rows) > 0.0

    def test_stage_totals_match_span_phases(self, logged):
        run, decomp = self.run_decomposed(logged)
        spans = decomp.spans.spans
        rows = decomp.rows()
        assert sum(r["queue"] for r in rows) == pytest.approx(
            sum(s.wait_seconds for s in spans))
        assert sum(r["service"] for r in rows) == pytest.approx(
            sum(s.exec_seconds + s.io_seconds for s in spans))
        assert sum(r["reconfig"] for r in rows) == pytest.approx(
            sum(s.reconfig_seconds + s.state_seconds for s in spans))

    def test_summary_shape(self, logged):
        _run, decomp = self.run_decomposed(logged)
        summary = decomp.summary()
        assert set(summary["share"]) == {"queue", "reconfig", "service"}
        assert summary["stages"] == ["queue", "reconfig", "service"]
        assert summary["n_spans"] == len(decomp.spans.spans)
        assert summary["n_open"] == 0


class TestQueueDepthGauges:
    def test_overlapping_waits_stack(self):
        """Wait is published at the *end* of the wait; two overlapping
        intervals must still count depth 2 at their intersection."""
        agg = MetricsAggregator()
        agg(Wait(2.0, "a", seconds=2.0))      # waited [0, 2]
        agg(Wait(3.0, "b", seconds=2.0))      # waited [1, 3]
        summary = agg.queue_depth_summary()
        assert summary["queue_depth_max"] == 2
        assert summary["queue_wait_seconds"] == pytest.approx(4.0)

    def test_back_to_back_waits_do_not_overlap(self):
        """A wait ending exactly when another starts is depth 1."""
        agg = MetricsAggregator()
        agg(Wait(1.0, "a", seconds=1.0))      # [0, 1]
        agg(Wait(2.0, "b", seconds=1.0))      # [1, 2]
        assert agg.queue_depth_summary()["queue_depth_max"] == 1

    def test_mean_is_wait_seconds_over_elapsed(self):
        agg = MetricsAggregator()
        agg(Wait(2.0, "a", seconds=2.0))
        agg(Wait(3.0, "b", seconds=2.0))
        summary = agg.queue_depth_summary()
        assert summary["queue_depth_mean"] == pytest.approx(
            4.0 / agg.elapsed)
        assert summary == {k: v
                           for k, v in agg.utilization_summary().items()
                           if k.startswith("queue_")}

    def test_empty_stream(self):
        agg = MetricsAggregator()
        summary = agg.queue_depth_summary()
        assert summary == {"queue_wait_seconds": 0.0,
                           "queue_depth_max": 0,
                           "queue_depth_mean": 0.0}

    def test_snapshot_parity_includes_queue_state(self, logged):
        """The aggregator stays a pure fold with the queue additions."""
        registry, tasks, kw = contended_build()()
        live = MetricsAggregator()
        run = logged(make_service("dynamic", registry, **kw),
                     subscribe=lambda bus: bus.subscribe_all(live))
        run.run(tasks)
        replayed = MetricsAggregator()
        for e in run.log.events:
            replayed(e)
        assert replayed.snapshot() == live.snapshot()
        assert live.snapshot()["queue"]["queue_depth_max"] >= 1
