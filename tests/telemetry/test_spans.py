"""Unit tests for the causal span builder and its CSV export."""

import csv
import io

import pytest

from repro.core import DynamicLoadingService
from repro.osim import FpgaOp, Task
from repro.telemetry import (
    SPAN_FIELDS,
    Evict,
    Exec,
    FpgaComplete,
    FpgaRequest,
    Load,
    PageFault,
    Preempt,
    SpanBuilder,
    StateSave,
    Wait,
    build_spans,
    spans_to_csv,
)


def synthetic_stream():
    """One operation with every phase: queue, load, exec, complete."""
    return [
        FpgaRequest(0.0, "t", source="kernel", config="c", op_id=1),
        Wait(0.0, "t", source="svc", seconds=0.5),
        Load(0.5, "t", source="svc", handle="c", seconds=1.0, clbs=9),
        PageFault(1.0, "t", source="svc", unit="p1"),
        Exec(1.5, "t", source="svc", handle="c", seconds=2.0),
        FpgaComplete(3.5, "t", source="kernel", config="c", op_id=1),
    ]


class TestSpanBuilder:
    def test_phases_and_annotations(self):
        b = build_spans(synthetic_stream())
        assert len(b.spans) == 1 and not b.open_spans and b.n_orphans == 0
        s = b.spans[0]
        assert (s.task, s.config, s.op_id) == ("t", "c", 1)
        assert s.closed and s.duration == pytest.approx(3.5)
        assert s.wait_seconds == pytest.approx(0.5)
        assert s.reconfig_seconds == pytest.approx(1.0)
        assert s.exec_seconds == pytest.approx(2.0)
        assert s.n_loads == 1 and s.n_page_faults == 1
        assert s.unaccounted_seconds == pytest.approx(0.0)
        assert s.overhead_seconds == pytest.approx(1.5)
        assert "svc" in s.sources and "kernel" not in s.sources

    def test_open_span_until_complete(self):
        b = build_spans(synthetic_stream()[:-1])
        assert not b.spans
        assert "t" in b.open_spans
        span = b.open_spans["t"]
        assert not span.closed and span.duration == 0.0

    def test_orphan_complete_counted(self):
        b = build_spans([
            FpgaComplete(1.0, "t", source="kernel", config="c", op_id=7),
        ])
        assert b.n_orphans == 1 and not b.spans

    def test_events_between_ops_unattributed(self):
        """Service activity outside any request window (boot loads,
        background evictions) must not land on a span."""
        b = build_spans([
            Load(0.0, "", source="svc", handle="boot", seconds=1.0),
            *synthetic_stream(),
            Evict(9.0, "t", source="svc", handle="c", seconds=0.2),
        ])
        assert len(b.spans) == 1
        assert b.spans[0].n_loads == 1  # the boot load is not counted
        assert b.spans[0].n_evictions == 0  # nor the post-complete evict

    def test_preemption_annotations(self):
        b = build_spans([
            FpgaRequest(0.0, "t", source="kernel", config="c", op_id=1),
            Preempt(1.0, "t", source="svc", handle="c"),
            StateSave(1.0, "t", source="svc", handle="c", seconds=0.3),
            FpgaComplete(2.0, "t", source="kernel", config="c", op_id=1),
        ])
        s = b.spans[0]
        assert s.n_preemptions == 1
        assert s.state_seconds == pytest.approx(0.3)

    def test_interleaved_tasks_attributed_separately(self):
        b = build_spans([
            FpgaRequest(0.0, "a", source="kernel", config="c", op_id=1),
            FpgaRequest(0.0, "b", source="kernel", config="d", op_id=2),
            Exec(0.0, "a", source="svc", handle="c", seconds=1.0),
            Exec(0.0, "b", source="svc", handle="d", seconds=2.0),
            FpgaComplete(1.0, "a", source="kernel", config="c", op_id=1),
            FpgaComplete(2.0, "b", source="kernel", config="d", op_id=2),
        ])
        by = {s.task: s for s in b.spans}
        assert by["a"].exec_seconds == pytest.approx(1.0)
        assert by["b"].exec_seconds == pytest.approx(2.0)

    def test_to_record_matches_span_fields(self):
        b = build_spans(synthetic_stream())
        rec = b.spans[0].to_record()
        assert set(SPAN_FIELDS) <= set(rec)
        assert rec["sources"] == "svc"
        assert rec["duration"] == pytest.approx(3.5)


class TestCsvExport:
    def test_header_and_rows(self):
        text = spans_to_csv(build_spans(synthetic_stream()))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 1
        assert list(rows[0]) == list(SPAN_FIELDS)
        assert rows[0]["task"] == "t"
        assert float(rows[0]["exec_seconds"]) == pytest.approx(2.0)

    def test_accepts_builder_or_iterable(self):
        b = build_spans(synthetic_stream())
        assert spans_to_csv(b) == spans_to_csv(list(b.spans))

    def test_write_to_path(self, tmp_path):
        p = tmp_path / "spans.csv"
        spans_to_csv(build_spans(synthetic_stream()), str(p))
        assert p.read_text().startswith("task,config,op_id")


class TestKernelRun:
    def test_span_count_matches_ops(self, registry, logged):
        spans_holder = {}
        run = logged(DynamicLoadingService(registry),
                     subscribe=lambda bus: spans_holder.update(
                         b=SpanBuilder(bus)))
        tasks = [Task("t0", [FpgaOp("a3", 5000), FpgaOp("b3", 5000)]),
                 Task("t1", [FpgaOp("c4", 5000)])]
        run.run(tasks)
        b = spans_holder["b"]
        assert len(b.spans) == 3
        assert not b.open_spans and b.n_orphans == 0
        assert all(s.closed and s.duration > 0 for s in b.spans)
        assert all(s.accounted_seconds <= s.duration + 1e-12
                   for s in b.spans)
