"""CLI smoke tests (capsys-based)."""

import pytest

from repro.cli import build_circuit, main


class TestBuildCircuit:
    def test_simple_spec(self):
        nl = build_circuit("ripple_adder:3")
        assert nl.name == "adder3"

    def test_multi_arg_spec(self):
        nl = build_circuit("serial_crc:8,0x07")
        assert nl.name.startswith("crc8")

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            build_circuit("warp_core:4")

    def test_bad_args(self):
        with pytest.raises(SystemExit):
            build_circuit("ripple_adder:1,2,3,4")


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "VF12" in out and "full download" in out

    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "ripple_adder" in out and "serial_crc" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E19" in out

    def test_compile_with_verify(self, capsys):
        rc = main(["compile", "parity_tree:4", "--family", "VF8",
                   "--effort", "greedy", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matches the gate-level golden model" in out
        assert "clock" in out

    def test_simulate(self, capsys):
        rc = main([
            "simulate", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "variable", "--tasks", "3", "--ops", "2",
            "--cycles", "20000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "useful FPGA" in out

    def test_trace_chrome(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "dynamic", "--tasks", "3", "--ops", "2",
            "--cycles", "20000", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out and "makespan" in out
        import json
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert {"X", "i"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_trace_jsonl_to_stdout(self, capsys):
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4",
            "--policy", "dynamic", "--tasks", "2", "--ops", "1",
            "--cycles", "10000", "--format", "jsonl", "-o", "-",
        ])
        assert rc == 0
        import json
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        recs = [json.loads(line) for line in lines]
        assert all("event" in r and "time" in r for r in recs)

    def test_trace_max_events_ring(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "dynamic", "--tasks", "3", "--ops", "2",
            "--cycles", "20000", "--max-events", "10", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 10 events" in out and "dropped" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
