"""CLI smoke tests (capsys-based)."""

import pytest

from repro.cli import build_circuit, main


class TestBuildCircuit:
    def test_simple_spec(self):
        nl = build_circuit("ripple_adder:3")
        assert nl.name == "adder3"

    def test_multi_arg_spec(self):
        nl = build_circuit("serial_crc:8,0x07")
        assert nl.name.startswith("crc8")

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            build_circuit("warp_core:4")

    def test_bad_args(self):
        with pytest.raises(SystemExit):
            build_circuit("ripple_adder:1,2,3,4")


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "VF12" in out and "full download" in out

    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "ripple_adder" in out and "serial_crc" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E19" in out

    def test_compile_with_verify(self, capsys):
        rc = main(["compile", "parity_tree:4", "--family", "VF8",
                   "--effort", "greedy", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matches the gate-level golden model" in out
        assert "clock" in out

    def test_simulate(self, capsys):
        rc = main([
            "simulate", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "variable", "--tasks", "3", "--ops", "2",
            "--cycles", "20000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "useful FPGA" in out

    def test_trace_chrome(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "dynamic", "--tasks", "3", "--ops", "2",
            "--cycles", "20000", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out and "makespan" in out
        import json
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert {"X", "i"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_trace_jsonl_to_stdout(self, capsys):
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4",
            "--policy", "dynamic", "--tasks", "2", "--ops", "1",
            "--cycles", "10000", "--format", "jsonl", "-o", "-",
        ])
        assert rc == 0
        import json
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        recs = [json.loads(line) for line in lines]
        assert all("event" in r and "time" in r for r in recs)

    def test_trace_max_events_ring(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "dynamic", "--tasks", "3", "--ops", "2",
            "--cycles", "20000", "--max-events", "10", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 10 events" in out and "dropped" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])


SMALL_RUN = [
    "--family", "VF10", "--circuits", "parity_tree:4,counter:3",
    "--policy", "dynamic", "--tasks", "3", "--ops", "2",
    "--cycles", "20000",
]


class TestReport:
    def test_live_report_tables(self, capsys):
        assert main(["report", *SMALL_RUN]) == 0
        out = capsys.readouterr().out
        # latency percentiles...
        assert "p50" in out and "p95" in out and "p99" in out
        assert "reconfiguration" in out and "operation (req" in out
        # ...utilization gauges...
        assert "CLB occupancy" in out and "config-port busy" in out
        # ...and the per-task phase breakdown.
        assert "task0" in out and "task2" in out

    def test_json_summary(self, capsys):
        import json
        assert main(["report", *SMALL_RUN, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary) == {"latency", "utilization", "spans"}
        assert summary["latency"]["reconfig"]["count"] > 0
        assert summary["latency"]["op"]["p99"] > 0
        assert summary["utilization"]["clb_occupancy_mean"] > 0
        assert summary["spans"]["n_spans"] == 3 * 2

    def test_report_from_recorded_jsonl(self, capsys, tmp_path):
        """Recording then reporting must match reporting live."""
        import json
        events = tmp_path / "events.jsonl"
        assert main(["trace", *SMALL_RUN, "--format", "jsonl",
                     "-o", str(events)]) == 0
        capsys.readouterr()
        assert main(["report", "-i", str(events), "--json"]) == 0
        recorded = json.loads(capsys.readouterr().out)
        assert main(["report", *SMALL_RUN, "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        assert recorded["latency"] == live["latency"]
        assert recorded["spans"] == live["spans"]

    def test_prometheus_and_csv_exports(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        csv_path = tmp_path / "spans.csv"
        assert main(["report", *SMALL_RUN, "--prometheus", str(prom),
                     "--csv", str(csv_path)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_reconfig_latency_seconds histogram" in text
        assert 'repro_reconfig_latency_seconds_bucket{le="+Inf"}' in text
        assert "repro_clb_occupancy_mean" in text
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0].startswith("task,config,op_id")
        assert len(rows) == 1 + 3 * 2  # header + one row per operation
        err = capsys.readouterr().err
        assert "Prometheus" in err and "span rows" in err

    def test_truncated_stream_warns(self, capsys):
        assert main(["report", *SMALL_RUN, "--max-events", "10"]) == 0
        captured = capsys.readouterr()
        assert "dropped" in captured.err and "partial" in captured.err
        assert "(truncated)" in captured.out


class TestAudit:
    def test_live_audit_clean(self, capsys):
        assert main(["audit", *SMALL_RUN]) == 0
        out = capsys.readouterr().out
        assert "no violations" in out

    def test_pagination_policy_audits_clean(self, capsys):
        """The acceptance case: demand paging under the online monitors."""
        rc = main(["audit", "--policy", "pagination", "--tasks", "2",
                   "--ops", "2", "--cycles", "20000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "paged" in out and "no violations" in out

    def test_json_report(self, capsys):
        import json
        assert main(["audit", *SMALL_RUN, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_violations"] == 0
        assert summary["n_events"] > 0

    def test_replay_of_recording_is_clean(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main(["trace", *SMALL_RUN, "--format", "jsonl",
                     "-o", str(events)]) == 0
        capsys.readouterr()
        assert main(["audit", "-i", str(events)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_corrupted_recording_fails(self, capsys, tmp_path):
        """Dropping an eviction from the recording makes the next load of
        that area a double allocation: exit code 1 + violation table."""
        events = tmp_path / "events.jsonl"
        assert main(["trace", *SMALL_RUN, "--format", "jsonl",
                     "-o", str(events)]) == 0
        lines = events.read_text().splitlines()
        import json
        kept, dropped = [], 0
        for line in lines:
            if not dropped and json.loads(line)["event"] == "Evict":
                dropped += 1
                continue
            kept.append(line)
        assert dropped == 1
        events.write_text("\n".join(kept) + "\n")
        capsys.readouterr()
        assert main(["audit", "-i", str(events)]) == 1
        out = capsys.readouterr().out
        assert "double-allocation" in out

    def test_strict_live_audit_passes_clean_run(self, capsys):
        assert main(["audit", *SMALL_RUN, "--strict"]) == 0


class TestSlo:
    def test_live_run_within_objective(self, capsys):
        assert main(["slo", *SMALL_RUN, "--slo", "p99<=10"]) == 0
        out = capsys.readouterr().out
        assert "objectives" in out and "ok" in out
        assert "stage decomposition" in out

    def test_breach_exits_nonzero(self, capsys):
        """The acceptance case: a violated objective is a failing exit."""
        assert main(["slo", *SMALL_RUN,
                     "--slo", "tight:p99<=1e-6"]) == 1
        out = capsys.readouterr().out
        assert "BREACHED" in out and "tight" in out
        assert "breach @" in out

    def test_report_only_without_objectives(self, capsys):
        assert main(["slo", *SMALL_RUN]) == 0
        out = capsys.readouterr().out
        assert "stage decomposition" in out
        assert "queue" in out and "reconfig" in out and "service" in out

    def test_json_summary(self, capsys):
        import json
        assert main(["slo", *SMALL_RUN, "--slo", "p99<=10",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"slo", "stages", "utilization"}
        assert doc["slo"]["breached"] is False
        assert doc["stages"]["n_spans"] == 3 * 2
        assert doc["utilization"]["queue_depth_max"] >= 0

    def test_recorded_matches_live(self, capsys, tmp_path):
        """The engine is a pure fold: evaluating the recording prints
        the same verdicts as evaluating the live run."""
        import json
        events = tmp_path / "events.jsonl"
        assert main(["trace", *SMALL_RUN, "--format", "jsonl",
                     "-o", str(events)]) == 0
        capsys.readouterr()
        spec = "gold:p95<=5e-3,availability>=0.999"
        assert main(["slo", "-i", str(events), "--slo", spec,
                     "--json"]) in (0, 1)
        recorded = json.loads(capsys.readouterr().out)
        main(["slo", *SMALL_RUN, "--slo", spec, "--json"])
        live = json.loads(capsys.readouterr().out)
        assert recorded["slo"] == live["slo"]

        def strip_sources(stages):
            # Source labels are minted per process (Svc#1 vs Svc#2 for
            # the second service this test builds); the decomposition
            # itself must be identical.
            return {**stages, "per_source": [
                {k: v for k, v in row.items() if k != "source"}
                for row in stages["per_source"]
            ]}
        assert strip_sources(recorded["stages"]) == \
            strip_sources(live["stages"])

    def test_bad_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["slo", *SMALL_RUN, "--slo", "frobnicate<=1"])

    def test_exports(self, capsys, tmp_path):
        prom = tmp_path / "slo.prom"
        csv_path = tmp_path / "stages.csv"
        assert main(["slo", *SMALL_RUN, "--slo", "p99<=10",
                     "--prometheus", str(prom),
                     "--csv", str(csv_path)]) == 0
        text = prom.read_text()
        assert "repro_queue_depth_max" in text
        assert "repro_slo_error_budget_remaining" in text
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0].startswith("source,ops")
        assert len(rows) >= 2


class TestBenchDiff:
    def make_bench(self, tmp_path, name, wall, events=1000):
        import json
        doc = {
            "experiment": "demo",
            "runs": [{
                "policy": "dynamic", "policy_kw": {},
                "wall_seconds": wall, "makespan": 0.5,
                "mean_turnaround": 0.1, "useful_fraction": 0.4,
                "telemetry": {"n_events": events},
            }],
        }
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_artifacts_pass(self, capsys, tmp_path):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=1.0)
        assert main(["bench-diff", a, b]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_25pct_wall_regression_fails(self, capsys, tmp_path):
        """The acceptance case: a synthetic 25% wall-clock regression
        must exit non-zero at the default 20% threshold."""
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=1.25)
        assert main(["bench-diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "+25.0%" in out

    def test_wall_improvement_passes(self, capsys, tmp_path):
        """Wall-clock gates on growth only — getting faster is fine."""
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=0.5)
        assert main(["bench-diff", a, b]) == 0

    def test_event_count_drift_fails_both_ways(self, tmp_path, capsys):
        """Event counts are deterministic: shrinking is drift too."""
        a = self.make_bench(tmp_path, "a.json", wall=1.0, events=1000)
        b = self.make_bench(tmp_path, "b.json", wall=1.0, events=700)
        assert main(["bench-diff", a, b]) == 1
        assert "telemetry.n_events" in capsys.readouterr().out

    def test_fail_on_threshold(self, tmp_path, capsys):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=1.25)
        assert main(["bench-diff", a, b, "--fail-on", "30"]) == 0

    def test_json_output(self, tmp_path, capsys):
        import json
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=1.25)
        assert main(["bench-diff", a, b, "--json"]) == 1
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is False
        assert summary["n_regressions"] == 1

    def test_per_metric_override_tolerates_wall_noise(self, tmp_path,
                                                      capsys):
        """--fail-on wall_seconds=300 relaxes only the wall clock; the
        deterministic metrics stay at the global threshold."""
        a = self.make_bench(tmp_path, "a.json", wall=1.0, events=1000)
        b = self.make_bench(tmp_path, "b.json", wall=3.0, events=1000)
        assert main(["bench-diff", a, b,
                     "--fail-on", "wall_seconds=300"]) == 0
        assert "gate >300%" in capsys.readouterr().out
        c = self.make_bench(tmp_path, "c.json", wall=3.0, events=700)
        assert main(["bench-diff", a, c,
                     "--fail-on", "wall_seconds=300"]) == 1
        assert "telemetry.n_events" in capsys.readouterr().out

    def test_override_can_tighten_one_metric(self, tmp_path):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=1.1)
        assert main(["bench-diff", a, b]) == 0
        assert main(["bench-diff", a, b,
                     "--fail-on", "wall_seconds=5"]) == 1

    def test_global_and_override_combine(self, tmp_path):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        b = self.make_bench(tmp_path, "b.json", wall=1.25)
        assert main(["bench-diff", a, b, "--fail-on", "30",
                     "--fail-on", "wall_seconds=10"]) == 1
        assert main(["bench-diff", a, b, "--fail-on", "10",
                     "--fail-on", "wall_seconds=30"]) == 0

    def test_unknown_override_metric_errors(self, tmp_path):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["bench-diff", a, a, "--fail-on", "bogus.metric=5"])

    def test_unparseable_fail_on_exits(self, tmp_path):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        with pytest.raises(SystemExit):
            main(["bench-diff", a, a, "--fail-on", "not-a-number"])

    def test_missing_file_errors(self, tmp_path):
        a = self.make_bench(tmp_path, "a.json", wall=1.0)
        with pytest.raises(SystemExit):
            main(["bench-diff", a, str(tmp_path / "nope.json")])

    def make_compile_bench(self, tmp_path, name, place, sa_steps=20):
        import json
        doc = {
            "experiment": "demo",
            "runs": [{
                "policy": "compile:adder4", "policy_kw": {},
                "wall_seconds": 0.05,
                "compile": {
                    "total_seconds": 0.05,
                    "phase_seconds": {"place": place, "route": 0.01},
                    "peak_rrg_nodes": 400, "sa_steps": sa_steps,
                    "final_cost": 60.0, "route_iterations": 2,
                    "final_overuse": 0,
                },
            }],
        }
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_compile_phase_growth_fails(self, capsys, tmp_path):
        a = self.make_compile_bench(tmp_path, "a.json", place=0.020)
        b = self.make_compile_bench(tmp_path, "b.json", place=0.030)
        assert main(["bench-diff", a, b]) == 1
        assert "compile.phase_seconds.place" in capsys.readouterr().out

    def test_compile_wall_floor_never_gates_tiny_phases(self, capsys,
                                                        tmp_path):
        """A 70 µs phase tripling is timer noise, not a regression —
        growth gates on compile wall clocks only fire above the floor."""
        a = self.make_compile_bench(tmp_path, "a.json", place=70e-6)
        b = self.make_compile_bench(tmp_path, "b.json", place=210e-6)
        assert main(["bench-diff", a, b]) == 0
        assert "below gate floor" in capsys.readouterr().out

    def test_compile_convergence_drift_fails(self, capsys, tmp_path):
        """SA step counts are deterministic: drifting means the flow
        changed, whichever direction."""
        a = self.make_compile_bench(tmp_path, "a.json", place=0.02,
                                    sa_steps=20)
        b = self.make_compile_bench(tmp_path, "b.json", place=0.02,
                                    sa_steps=10)
        assert main(["bench-diff", a, b]) == 1
        assert "compile.sa_steps" in capsys.readouterr().out

    def make_e13d_bench(self, tmp_path, name, speedup, warm=0.002):
        import json
        doc = {
            "experiment": "demo",
            "runs": [{
                "policy": "e13d:fir8x4", "policy_kw": {},
                "e13d": {
                    "cold_seconds": 1.2, "warm_seconds": warm,
                    "warm_reduction": round(1 - warm / 1.2, 4),
                    "sa_speedup": speedup,
                },
            }],
        }
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_speedup_erosion_fails_shrink_gate(self, capsys, tmp_path):
        """Won metrics gate on *shrink*: losing the vectorization win
        past the threshold fails, even though nothing grew."""
        a = self.make_e13d_bench(tmp_path, "a.json", speedup=2.0)
        b = self.make_e13d_bench(tmp_path, "b.json", speedup=1.2)
        assert main(["bench-diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "e13d.sa_speedup" in out and "REGRESSED" in out

    def test_speedup_improvement_passes_shrink_gate(self, tmp_path):
        """Shrink gates are one-sided: winning harder is always fine."""
        a = self.make_e13d_bench(tmp_path, "a.json", speedup=2.0)
        b = self.make_e13d_bench(tmp_path, "b.json", speedup=3.5)
        assert main(["bench-diff", a, b]) == 0

    def test_warm_seconds_below_floor_never_gates(self, capsys, tmp_path):
        """A warm compile is a ~2 ms dictionary lookup; its growth gate
        sits under the compile wall floor like any tiny phase."""
        a = self.make_e13d_bench(tmp_path, "a.json", speedup=2.0,
                                 warm=0.0004)
        b = self.make_e13d_bench(tmp_path, "b.json", speedup=2.0,
                                 warm=0.0009)
        assert main(["bench-diff", a, b]) == 0
        assert "below gate floor" in capsys.readouterr().out


class TestCompileReport:
    def test_live_report(self, capsys):
        rc = main(["compile-report", "ripple_adder:4", "--family", "VF10",
                   "--effort", "sa", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compiled ripple_adder:4" in out
        assert "per-phase wall clock" in out
        assert "SA cost curve" in out
        assert "PathFinder convergence" in out

    def test_requires_circuit_or_input(self):
        with pytest.raises(SystemExit):
            main(["compile-report"])

    def test_live_vs_recorded_parity(self, capsys, tmp_path):
        """The profile is a pure function of the event stream: reducing
        a recorded JSONL must print byte-identical --json output."""
        jsonl = str(tmp_path / "cad.jsonl")
        assert main(["compile-report", "alu:3", "--family", "VF10",
                     "--effort", "sa", "--seed", "3",
                     "--jsonl", jsonl, "--json"]) == 0
        live = capsys.readouterr().out
        live_profile = live[live.index("{"):]
        assert main(["compile-report", "-i", jsonl, "--json"]) == 0
        recorded = capsys.readouterr().out
        assert recorded[recorded.index("{"):] == live_profile

    def test_trace_export_is_valid_json(self, tmp_path):
        import json
        trace = str(tmp_path / "cad-trace.json")
        assert main(["compile-report", "counter:3", "--family", "VF10",
                     "--effort", "greedy", "--trace", trace]) == 0
        doc = json.load(open(trace))
        names = {ev.get("name") for ev in doc["traceEvents"]}
        assert any(n and n.startswith("CadPhaseEnd") for n in names)

    def test_failed_compile_reports_partial_profile(self, capsys):
        """A compile that cannot fit exits 1 but still shows the phases
        that ran — the whole point of instrumenting failures."""
        rc = main(["compile-report", "alu:6", "--family", "VF4",
                   "--effort", "greedy", "--seed", "3"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "per-phase wall clock" in captured.out
        assert "compile failed" in captured.err
        # techmap and pack ran; placement is where it died.
        assert "techmap" in captured.out

    def test_engine_knob_does_not_change_the_result(self, capsys):
        """scalar and vector kernels are pinned bit-identical, so the
        compile summary lines must match exactly."""
        import re

        outs = []
        for engine in ("scalar", "vector"):
            assert main(["compile", "ripple_adder:4", "--family", "VF10",
                         "--seed", "3", "--engine", engine]) == 0
            out = capsys.readouterr().out
            # Strip the load-time line's jitter-free parts only: every
            # line here is deterministic, so compare verbatim.
            outs.append(re.sub(r"load [0-9.]+ms", "load", out))
        assert outs[0] == outs[1]

    def test_compile_cache_summary(self, capsys):
        """--compile-cache compiles cold+warm through one cache and the
        report shows a flow hit with bytes served."""
        rc = main(["compile-report", "ripple_adder:4", "--family", "VF10",
                   "--seed", "3", "--compile-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compile cache" in out
        assert "1 flow hits" in out
        assert "bytes served" in out
        # The cold run misses every stage once.
        assert "pack" in out and "place" in out and "route" in out

    def test_no_cache_flag_means_no_cache_table(self, capsys):
        assert main(["compile-report", "ripple_adder:4", "--family",
                     "VF10", "--seed", "3"]) == 0
        assert "compile cache" not in capsys.readouterr().out
