"""CLI smoke tests (capsys-based)."""

import pytest

from repro.cli import build_circuit, main


class TestBuildCircuit:
    def test_simple_spec(self):
        nl = build_circuit("ripple_adder:3")
        assert nl.name == "adder3"

    def test_multi_arg_spec(self):
        nl = build_circuit("serial_crc:8,0x07")
        assert nl.name.startswith("crc8")

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            build_circuit("warp_core:4")

    def test_bad_args(self):
        with pytest.raises(SystemExit):
            build_circuit("ripple_adder:1,2,3,4")


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "VF12" in out and "full download" in out

    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "ripple_adder" in out and "serial_crc" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E19" in out

    def test_compile_with_verify(self, capsys):
        rc = main(["compile", "parity_tree:4", "--family", "VF8",
                   "--effort", "greedy", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matches the gate-level golden model" in out
        assert "clock" in out

    def test_simulate(self, capsys):
        rc = main([
            "simulate", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "variable", "--tasks", "3", "--ops", "2",
            "--cycles", "20000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "useful FPGA" in out

    def test_trace_chrome(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "dynamic", "--tasks", "3", "--ops", "2",
            "--cycles", "20000", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out and "makespan" in out
        import json
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert {"X", "i"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_trace_jsonl_to_stdout(self, capsys):
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4",
            "--policy", "dynamic", "--tasks", "2", "--ops", "1",
            "--cycles", "10000", "--format", "jsonl", "-o", "-",
        ])
        assert rc == 0
        import json
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        recs = [json.loads(line) for line in lines]
        assert all("event" in r and "time" in r for r in recs)

    def test_trace_max_events_ring(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--family", "VF10",
            "--circuits", "parity_tree:4,counter:3",
            "--policy", "dynamic", "--tasks", "3", "--ops", "2",
            "--cycles", "20000", "--max-events", "10", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 10 events" in out and "dropped" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])


SMALL_RUN = [
    "--family", "VF10", "--circuits", "parity_tree:4,counter:3",
    "--policy", "dynamic", "--tasks", "3", "--ops", "2",
    "--cycles", "20000",
]


class TestReport:
    def test_live_report_tables(self, capsys):
        assert main(["report", *SMALL_RUN]) == 0
        out = capsys.readouterr().out
        # latency percentiles...
        assert "p50" in out and "p95" in out and "p99" in out
        assert "reconfiguration" in out and "operation (req" in out
        # ...utilization gauges...
        assert "CLB occupancy" in out and "config-port busy" in out
        # ...and the per-task phase breakdown.
        assert "task0" in out and "task2" in out

    def test_json_summary(self, capsys):
        import json
        assert main(["report", *SMALL_RUN, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary) == {"latency", "utilization", "spans"}
        assert summary["latency"]["reconfig"]["count"] > 0
        assert summary["latency"]["op"]["p99"] > 0
        assert summary["utilization"]["clb_occupancy_mean"] > 0
        assert summary["spans"]["n_spans"] == 3 * 2

    def test_report_from_recorded_jsonl(self, capsys, tmp_path):
        """Recording then reporting must match reporting live."""
        import json
        events = tmp_path / "events.jsonl"
        assert main(["trace", *SMALL_RUN, "--format", "jsonl",
                     "-o", str(events)]) == 0
        capsys.readouterr()
        assert main(["report", "-i", str(events), "--json"]) == 0
        recorded = json.loads(capsys.readouterr().out)
        assert main(["report", *SMALL_RUN, "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        assert recorded["latency"] == live["latency"]
        assert recorded["spans"] == live["spans"]

    def test_prometheus_and_csv_exports(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        csv_path = tmp_path / "spans.csv"
        assert main(["report", *SMALL_RUN, "--prometheus", str(prom),
                     "--csv", str(csv_path)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_reconfig_latency_seconds histogram" in text
        assert 'repro_reconfig_latency_seconds_bucket{le="+Inf"}' in text
        assert "repro_clb_occupancy_mean" in text
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0].startswith("task,config,op_id")
        assert len(rows) == 1 + 3 * 2  # header + one row per operation
        err = capsys.readouterr().err
        assert "Prometheus" in err and "span rows" in err

    def test_truncated_stream_warns(self, capsys):
        assert main(["report", *SMALL_RUN, "--max-events", "10"]) == 0
        captured = capsys.readouterr()
        assert "dropped" in captured.err and "partial" in captured.err
        assert "(truncated)" in captured.out
